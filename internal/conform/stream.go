package conform

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// The chunked on-disk trace format. A trace is a directory of segment
// files:
//
//	header.seg            streamHeader: format version + per-node core
//	                      construction parameters
//	chunk-00000001.seg    streamChunk: one window of macro-steps per node,
//	chunk-00000002.seg    with the node-local start offsets of the window
//	...                   and a quiescence mark for the cut that closed it
//	footer.seg            streamFooter: chunk count + per-node step totals,
//	                      written last — its presence seals the trace
//
// Every segment is written to a temporary file in the same directory,
// fsynced, and renamed into place, so a crash at any point leaves either a
// complete segment or none: the sealed prefix of a torn trace is always
// replayable. Segment payloads are gob, framed by a magic string, an
// explicit length, and a CRC so torn or foreign files are detected rather
// than misparsed.
//
// The recorder shared by all nodes of a run serializes every record under
// one mutex. That linearization is what makes chunk boundaries consistent
// cuts: every cross-node dependence at the recorded interface (a message
// received was recorded as sent first; a safe indication follows the
// recorded receipt at every member) passes through a real-time chain whose
// endpoints are records, so a boundary can never capture an effect without
// its cause. See DESIGN.md §6.8 for the full argument.

const (
	segMagic      = "DVSSEG1\n"
	streamVersion = 1
	headerSeg     = "header.seg"
	footerSeg     = "footer.seg"

	// Defaults for StreamOptions.
	defaultWindowSteps = 4096
	defaultWindowBytes = 4 << 20
)

func chunkSeg(seq int) string { return fmt.Sprintf("chunk-%08d.seg", seq) }

// NodeMeta carries one node's core construction parameters in the stream
// header — the same fields NodeLog records in-memory.
type NodeMeta struct {
	P        types.ProcID
	Group    types.GroupID // group this stack belongs to (0 in single-group runs)
	Initial  types.View
	InP0     bool
	Register bool
	GC       bool
	Static   bool // static-primary filter (staticcore) instead of the DVS core
}

type streamHeader struct {
	Version int
	Nodes   []NodeMeta // sorted by P
}

// chunkPart is one node's slice of a chunk: the records buffered since the
// previous cut, plus their start offsets in the node's full per-layer logs
// (so the replayer can verify the chunks are gap-free and index divergences
// globally).
type chunkPart struct {
	P        types.ProcID
	DVSStart int
	DVS      []DVSRecord
	TOStart  int
	TO       []TORecord
}

type streamChunk struct {
	Seq       int // 1-based, contiguous
	Quiescent bool
	Parts     []chunkPart // one per node, sorted by P
}

type nodeTotal struct {
	P   types.ProcID
	DVS int
	TO  int
}

type streamFooter struct {
	Chunks int
	Totals []nodeTotal // sorted by P
}

// writeSegment atomically writes one framed gob segment: encode to memory,
// write magic + length + payload + CRC to a temp file in the target
// directory, fsync, rename. A failure at any point leaves no partial file
// at path.
func writeSegment(path string, v any) (err error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("conform: encode segment %s: %w", filepath.Base(path), err)
	}
	payload := buf.Bytes()

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".seg-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	var frame [8]byte
	if _, err = io.WriteString(f, segMagic); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(frame[:], uint64(len(payload)))
	if _, err = f.Write(frame[:]); err != nil {
		return err
	}
	if _, err = f.Write(payload); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(frame[:4], crc32.ChecksumIEEE(payload))
	if _, err = f.Write(frame[:4]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(f.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// readSegment reads and verifies one segment into v. A missing file
// surfaces as os.ErrNotExist; any framing or checksum failure is an
// explicit corruption error.
func readSegment(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(segMagic)+8+4 || string(data[:len(segMagic)]) != segMagic {
		return fmt.Errorf("conform: %s: not a trace segment", filepath.Base(path))
	}
	body := data[len(segMagic):]
	n := binary.BigEndian.Uint64(body[:8])
	body = body[8:]
	if uint64(len(body)) != n+4 {
		return fmt.Errorf("conform: %s: truncated segment (%d of %d payload bytes)",
			filepath.Base(path), len(body), n+4)
	}
	payload, sum := body[:n], binary.BigEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("conform: %s: segment checksum mismatch", filepath.Base(path))
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("conform: %s: decode segment: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so a rename survives a crash; not
// every platform supports syncing directories, so errors are ignored.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// StreamOptions bound the recorder's in-memory window. A cut is taken as
// soon as either threshold is reached, so recorder memory is O(window)
// regardless of run length.
type StreamOptions struct {
	// WindowSteps cuts a chunk after this many buffered macro-steps summed
	// over all nodes and both layers (default 4096).
	WindowSteps int
	// WindowBytes cuts a chunk once the buffered records are estimated to
	// exceed this size (approximate, default 4 MiB).
	WindowBytes int
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.WindowSteps <= 0 {
		o.WindowSteps = defaultWindowSteps
	}
	if o.WindowBytes <= 0 {
		o.WindowBytes = defaultWindowBytes
	}
	return o
}

// StreamRecorder spills the macro-step traces of a whole run to a chunked
// on-disk trace. One recorder is shared by every node of the run: the
// shared mutex linearizes all records, which is what makes each chunk
// boundary a consistent cut (see the format comment above). Register each
// node with Node before any observer fires; Close after every node has
// stopped to write the final quiescent cut and the sealing footer.
type StreamRecorder struct {
	dir  string
	opts StreamOptions

	mu      sync.Mutex
	nodes   []*StreamNode // sorted by P
	byP     map[types.ProcID]*StreamNode
	started bool // header written; registration closed
	closed  bool
	seq     int
	steps   int // records buffered since the last cut
	bytes   int // estimated buffered payload bytes
	peak    int // high-water mark of steps (the O(window) witness)
	err     error
}

// StreamNode buffers one node's records into the shared recorder. Its
// ObserveDVS/ObserveTO have the same signatures as Recorder's and install
// the same way.
type StreamNode struct {
	r        *StreamRecorder
	meta     NodeMeta
	dvsStart int // global index of the first buffered DVS record
	dvs      []DVSRecord
	toStart  int
	to       []TORecord
}

// NewStreamRecorder creates the trace directory (if needed) and a recorder
// writing into it. The directory should be empty or a previous trace: stale
// chunks past the new footer would otherwise confuse a replay.
func NewStreamRecorder(dir string, opts StreamOptions) (*StreamRecorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &StreamRecorder{
		dir:  dir,
		opts: opts.withDefaults(),
		byP:  make(map[types.ProcID]*StreamNode),
	}, nil
}

// Dir returns the trace directory.
func (r *StreamRecorder) Dir() string { return r.dir }

// Node registers one node of the run, with the same core construction
// parameters NewRecorder takes. All nodes must register before the first
// record is spilled (registration defines the header, which is written once).
func (r *StreamRecorder) Node(p types.ProcID, g types.GroupID, initial types.View, inP0, register, gc, static bool) (*StreamNode, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.closed {
		return nil, fmt.Errorf("conform: stream node %s registered after the header was written", p)
	}
	if _, dup := r.byP[p]; dup {
		return nil, fmt.Errorf("conform: duplicate stream node %s", p)
	}
	sn := &StreamNode{r: r, meta: NodeMeta{
		P: p, Group: g, Initial: initial.Clone(), InP0: inP0, Register: register, GC: gc, Static: static,
	}}
	r.byP[p] = sn
	r.nodes = append(r.nodes, sn)
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].meta.P < r.nodes[j].meta.P })
	return sn, nil
}

// Cut forces a chunk boundary now. quiescent marks the cut as one where the
// caller guarantees the whole system is idle at the recorded interface (no
// messages or safe indications in flight between cores) — the stream
// replayer runs the full cross-node invariant suite at quiescent cuts, and
// only the per-node checks elsewhere. A non-quiescent Cut with nothing
// buffered is a no-op.
func (r *StreamRecorder) Cut(quiescent bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.steps == 0 && !quiescent {
		return
	}
	r.cutLocked(quiescent)
}

// Close writes the final cut (quiescent: every node has stopped) and the
// sealing footer, and returns the first write error encountered over the
// stream's lifetime. Close is idempotent.
func (r *StreamRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.steps > 0 {
		r.cutLocked(true)
	}
	if !r.started {
		r.writeHeaderLocked()
	}
	if r.err == nil {
		ft := streamFooter{Chunks: r.seq}
		for _, sn := range r.nodes {
			ft.Totals = append(ft.Totals, nodeTotal{P: sn.meta.P, DVS: sn.dvsStart, TO: sn.toStart})
		}
		if err := writeSegment(filepath.Join(r.dir, footerSeg), ft); err != nil {
			r.err = err
		}
	}
	return r.err
}

// Err returns the sticky first write error (nil while healthy). Records
// observed after an error are dropped; the sealed prefix on disk stays
// valid.
func (r *StreamRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// PeakWindowSteps returns the high-water mark of buffered macro-steps — the
// witness that recorder memory stayed O(window): it can never exceed the
// steps threshold plus one in-flight record per node.
func (r *StreamRecorder) PeakWindowSteps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peak
}

func (r *StreamRecorder) writeHeaderLocked() {
	hdr := streamHeader{Version: streamVersion}
	for _, sn := range r.nodes {
		hdr.Nodes = append(hdr.Nodes, sn.meta)
	}
	if err := writeSegment(filepath.Join(r.dir, headerSeg), hdr); err != nil && r.err == nil {
		r.err = err
	}
	r.started = true
}

func (r *StreamRecorder) cutLocked(quiescent bool) {
	if !r.started {
		r.writeHeaderLocked()
	}
	if r.err != nil {
		return
	}
	ch := streamChunk{Seq: r.seq + 1, Quiescent: quiescent}
	for _, sn := range r.nodes {
		ch.Parts = append(ch.Parts, chunkPart{
			P: sn.meta.P, DVSStart: sn.dvsStart, DVS: sn.dvs, TOStart: sn.toStart, TO: sn.to,
		})
		sn.dvsStart += len(sn.dvs)
		sn.toStart += len(sn.to)
		sn.dvs, sn.to = nil, nil
	}
	r.steps, r.bytes = 0, 0
	if err := writeSegment(filepath.Join(r.dir, chunkSeg(ch.Seq)), ch); err != nil {
		r.err = err
		return
	}
	r.seq = ch.Seq
}

// noteLocked accounts one buffered record and cuts when a threshold is hit.
// est is a cheap size estimate; WindowBytes is documented as approximate.
func (r *StreamRecorder) noteLocked(est int) {
	r.steps++
	r.bytes += est
	if r.steps > r.peak {
		r.peak = r.steps
	}
	if r.steps >= r.opts.WindowSteps || r.bytes >= r.opts.WindowBytes {
		r.cutLocked(false)
	}
}

// ObserveDVS records one VS-TO-DVS macro-step; install as the dvsg layer's
// observer. Deep-copies like Recorder.ObserveDVS.
func (sn *StreamNode) ObserveDVS(ev dvscore.Event, fx []dvscore.Effect) {
	rec := DVSRecord{Ev: cloneDVSEvent(ev), Fx: make([]dvscore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneDVSEffect(f)
	}
	r := sn.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.err != nil {
		return
	}
	sn.dvs = append(sn.dvs, rec)
	r.noteLocked(64 + 64*len(fx))
}

// ObserveTO records one DVS-TO-TO macro-step; install as the tob layer's
// observer.
func (sn *StreamNode) ObserveTO(ev tocore.Event, fx []tocore.Effect) {
	rec := TORecord{Ev: cloneTOEvent(ev), Fx: make([]tocore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneTOEffect(f)
	}
	r := sn.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.err != nil {
		return
	}
	sn.to = append(sn.to, rec)
	r.noteLocked(64 + 64*len(fx))
}
