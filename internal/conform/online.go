package conform

import (
	"sync"
	"time"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// OnlineConfig bounds the in-process sampled checker.
type OnlineConfig struct {
	// Window is the number of most-recent macro-steps kept per layer for
	// re-stepping (default 256). Larger windows catch corruption with more
	// context but cost more per check.
	Window int
	// Every runs one sampled check per this many observed macro-steps,
	// summed over both layers (default 1024).
	Every int
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Every <= 0 {
		c.Every = 1024
	}
	return c
}

// OnlineStats is a snapshot of the checker's counters, exported by dvsnode
// through the expvar surface.
type OnlineStats struct {
	Steps         uint64 // macro-steps observed (both layers)
	Checks        uint64 // sampled checks run
	StepsChecked  uint64 // macro-steps re-stepped across all checks
	Divergences   uint64
	Violations    uint64
	LastError     string // most recent divergence or violation, rendered
	CheckNanos    int64  // cumulative wall time spent inside checks
	MaxCheckNanos int64  // slowest single check
}

// OnlineChecker is the always-on, bounded-suffix conformance checker: it
// keeps a pair of shadow cores lagging the live ones by at most Window
// macro-steps per layer, and on a sampling schedule clones them, re-steps
// the buffered suffix, compares the re-derived effects against the recorded
// ones, and runs the per-node invariant projections on the result. Memory
// is O(Window) on top of the shadow core state; check cost is O(Window)
// per sample, amortized to O(Window/Every) per macro-step.
//
// Observe callbacks run on the node's event loop, so check latency is paid
// inline — that is the overhead EXPERIMENTS.md E13 measures. Stats may be
// read from any goroutine.
type OnlineChecker struct {
	cfg      OnlineConfig
	p        types.ProcID
	register bool
	gc       bool

	mu      sync.Mutex
	baseDVS *dvscore.Node // lags the live core by len(winDVS) steps
	baseTO  *tocore.Node
	winDVS  []DVSRecord
	winTO   []TORecord
	local   localState
	since   int
	stats   OnlineStats
}

// NewOnlineChecker builds a checker for the node with the given core
// construction parameters (NewRecorder's, minus static: the online checker
// shadows the dynamic cores only).
func NewOnlineChecker(p types.ProcID, initial types.View, inP0, register, gc bool, cfg OnlineConfig) *OnlineChecker {
	return &OnlineChecker{
		cfg:      cfg.withDefaults(),
		p:        p,
		register: register,
		gc:       gc,
		baseDVS:  dvscore.NewNode(p, initial, inP0),
		baseTO:   tocore.NewNode(p, initial, inP0, false),
	}
}

// ObserveDVS buffers one VS-TO-DVS macro-step; install as a dvsg observer.
func (c *OnlineChecker) ObserveDVS(ev dvscore.Event, fx []dvscore.Effect) {
	rec := DVSRecord{Ev: cloneDVSEvent(ev), Fx: make([]dvscore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneDVSEffect(f)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.winDVS = append(c.winDVS, rec)
	if len(c.winDVS) > c.cfg.Window {
		// Age the oldest record out of the window by advancing the shadow
		// core past it; the slice head moves, append reallocates eventually,
		// so retained memory stays O(Window).
		var out dvscore.Outbox
		dvscore.Step(c.baseDVS, c.winDVS[0].Ev, c.gc, &out)
		c.winDVS = c.winDVS[1:]
	}
	c.tickLocked()
}

// ObserveTO buffers one DVS-TO-TO macro-step; install as a tob observer.
func (c *OnlineChecker) ObserveTO(ev tocore.Event, fx []tocore.Effect) {
	rec := TORecord{Ev: cloneTOEvent(ev), Fx: make([]tocore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneTOEffect(f)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.winTO = append(c.winTO, rec)
	if len(c.winTO) > c.cfg.Window {
		var out tocore.Outbox
		// Recorded events were accepted by the live core, so the shadow
		// cannot reject them; a rejection would surface as a divergence at
		// the next sampled check anyway.
		tocore.Step(c.baseTO, c.winTO[0].Ev, c.register, &out)
		c.winTO = c.winTO[1:]
	}
	c.tickLocked()
}

func (c *OnlineChecker) tickLocked() {
	c.stats.Steps++
	c.since++
	if c.since >= c.cfg.Every {
		c.since = 0
		c.checkLocked()
	}
}

// checkLocked is one sampled check: clone the shadow cores, re-step the
// buffered suffix, compare effects, run the per-node projections.
func (c *OnlineChecker) checkLocked() {
	start := time.Now()
	dn := c.baseDVS.Clone()
	tn := c.baseTO.Clone()
	rep := &Report{}
	for i, rec := range c.winDVS {
		stepDVSRecord(rep, 0, c.p, c.gc, dn, i, rec)
	}
	for i, rec := range c.winTO {
		stepTORecord(rep, 0, c.p, c.register, tn, i, rec)
	}
	checkLocal(rep, 0, c.p, dn, nil, tn, &c.local)

	c.stats.Checks++
	c.stats.StepsChecked += uint64(len(c.winDVS) + len(c.winTO))
	if n := len(rep.Divergences); n > 0 {
		c.stats.Divergences += uint64(n)
		c.stats.LastError = rep.Divergences[0].String()
	}
	if n := len(rep.Violations); n > 0 {
		c.stats.Violations += uint64(n)
		c.stats.LastError = rep.Violations[0].String()
	}
	nanos := time.Since(start).Nanoseconds()
	c.stats.CheckNanos += nanos
	if nanos > c.stats.MaxCheckNanos {
		c.stats.MaxCheckNanos = nanos
	}
}

// Stats returns a snapshot of the counters. Thread-safe.
func (c *OnlineChecker) Stats() OnlineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
