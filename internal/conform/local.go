package conform

import (
	"fmt"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/staticcore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// Per-node invariant projections, run by the stream replayer at every chunk
// boundary and by the online checker at every sampled check. Each is a
// sound single-node instance of a paper invariant: it quantifies only over
// state owned by the node itself (plus the node's own history across
// boundaries), so it holds at every consistent cut of a correct run — no
// quiescence assumption needed. The full cross-node suite (checkCut) runs
// only at quiescent boundaries, where the in-flight components the global
// formulas implicitly assume empty really are empty.

// localState carries a node's cross-boundary check memory: the confirmed
// prefix's length and last label at the previous check, used to verify the
// prefix only ever grows in place — the per-node shadow of the TO service's
// no-unconfirming guarantee. (The TO core may rebuild its order at view
// establishment; a rebuild that shrank or rewrote the already-confirmed
// prefix would reorder messages already handed to the application.)
type localState struct {
	confirmedLen  int
	confirmedTail types.Label
}

// checkLocal runs the per-node checks for node p over its replayed cores,
// attributing violations to window. dn is nil for a static-mode node (the
// DVS projections quantify over attempt/ambiguity state the static filter
// does not have); sn is nil for a dynamic-mode node. The TO projections are
// filter-independent and run for both.
func checkLocal(rep *Report, window int, p types.ProcID, dn *dvscore.Node, sn *staticcore.Node, tn *tocore.Node, st *localState) {
	check := func(name string, f func() error) {
		rep.Checks++
		if err := f(); err != nil {
			rep.Violations = append(rep.Violations, Violation{Name: name, Window: window, Err: err})
		}
	}
	if dn != nil {
		check("DVSIMPL-5.1-local", func() error { return checkLocal51(p, dn) })
		check("DVSIMPL-5.2-local", func() error { return checkLocal52(p, dn) })
	}
	if sn != nil {
		check("STATIC-primary-quorum-local", func() error { return checkLocalStaticPrimary(p, sn) })
	}
	check("TOIMPL-order-local", func() error { return checkLocalTOOrder(p, tn) })
	check("TOIMPL-confirmed-monotone", func() error { return checkConfirmedMonotone(p, tn, st) })
}

// checkLocalStaticPrimary is the static baseline's per-node safety
// projection: any primary the node announced to its client must be a quorum
// of the node's fixed quorum system — the property that makes two static
// primaries intersect.
func checkLocalStaticPrimary(p types.ProcID, sn *staticcore.Node) error {
	cc, ok := sn.ClientCur()
	if !ok {
		return nil
	}
	if !sn.Quorum(cc.Members) {
		return fmt.Errorf("p=%s announced primary %s whose members are not a quorum of P0", p, cc)
	}
	return nil
}

// checkLocal51 is the self instance of Invariant 5.1: if p itself attempted
// v and p ∈ v.set, then cur_p ≠ ⊥ and cur.id_p ≥ v.id.
func checkLocal51(p types.ProcID, dn *dvscore.Node) error {
	for _, v := range dn.AttemptedShared() {
		if !v.Members.Contains(p) {
			continue
		}
		cur, ok := dn.Cur()
		if !ok || cur.ID.Less(v.ID) {
			return fmt.Errorf("p=%s attempted %s but cur_%s < v.id", p, v, p)
		}
	}
	return nil
}

// checkLocal52 is the purely local fragment of Invariant 5.2: part 2
// (ambiguous ids exceed act.id) and the amended part 3 (use ids bounded by
// cur.id; all zero while cur = ⊥). Parts 1 and 4–6 need the cross-node
// totally-registered set and run only in checkCut.
func checkLocal52(p types.ProcID, dn *dvscore.Node) error {
	act := dn.Act()
	amb := dn.Amb()
	for _, w := range amb {
		if !act.ID.Less(w.ID) {
			return fmt.Errorf("5.2(2): amb_%s contains %s with id ≤ act.id %s", p, w, act.ID)
		}
	}
	if cur, ok := dn.Cur(); ok {
		if cur.ID.Less(act.ID) {
			return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, act, cur.ID)
		}
		for _, w := range amb {
			if cur.ID.Less(w.ID) {
				return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, w, cur.ID)
			}
		}
		return nil
	}
	if !act.ID.IsZero() {
		return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, act)
	}
	for _, w := range amb {
		if !w.ID.IsZero() {
			return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, w)
		}
	}
	return nil
}

// checkLocalTOOrder checks the structural index bounds of the DVS-TO-TO
// automaton: the 1-based report and confirm indices satisfy
// 1 ≤ nextReport ≤ nextConfirm ≤ |order|+1 — delivery never overtakes
// confirmation, confirmation never overtakes the built order.
func checkLocalTOOrder(p types.ProcID, tn *tocore.Node) error {
	nr, nc, n := tn.NextReport(), tn.NextConfirm(), len(tn.Order())
	if nr < 1 || nc < nr || nc > n+1 {
		return fmt.Errorf("p=%s index bounds broken: nextReport=%d nextConfirm=%d |order|=%d", p, nr, nc, n)
	}
	return nil
}

// checkConfirmedMonotone checks that p's confirmed prefix grew in place
// since the previous boundary: it never shrinks, and the label that closed
// the old prefix is still at its position in the new one.
func checkConfirmedMonotone(p types.ProcID, tn *tocore.Node, st *localState) error {
	cur := tn.ConfirmedShared()
	if len(cur) < st.confirmedLen {
		return fmt.Errorf("p=%s confirmed prefix shrank from %d to %d", p, st.confirmedLen, len(cur))
	}
	if st.confirmedLen > 0 && cur[st.confirmedLen-1] != st.confirmedTail {
		return fmt.Errorf("p=%s confirmed prefix rewritten at %d: had %s, now %s",
			p, st.confirmedLen-1, st.confirmedTail, cur[st.confirmedLen-1])
	}
	st.confirmedLen = len(cur)
	if len(cur) > 0 {
		st.confirmedTail = cur[len(cur)-1]
	}
	return nil
}
