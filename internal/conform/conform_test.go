package conform

import (
	"bytes"
	"testing"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// recordedRun drives the two cores of a singleton node through a small
// scripted run via the same Step/Recorder path the runtime shells use, and
// returns the harvested log.
func recordedRun(t *testing.T) NodeLog {
	t.Helper()
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	rec := NewRecorder(p, 0, initial, true, true, true, false)

	dn := dvscore.NewNode(p, initial, true)
	tn := tocore.NewNode(p, initial, true, false)

	stepDVS := func(ev dvscore.Event) []dvscore.Effect {
		var out dvscore.Outbox
		dvscore.Step(dn, ev, true, &out)
		rec.ObserveDVS(ev, out.Effects)
		return out.Effects
	}
	stepTO := func(ev tocore.Event) []tocore.Effect {
		var out tocore.Outbox
		if err := tocore.Step(tn, ev, true, &out); err != nil {
			t.Fatalf("to step: %v", err)
		}
		rec.ObserveTO(ev, out.Effects)
		return out.Effects
	}

	// The TO core broadcasts, labels, and sends; the label message travels
	// through the DVS core and comes back up as delivery plus safe.
	for _, fx := range stepTO(tocore.EvBroadcast{A: "a1"}) {
		if send, ok := fx.(tocore.FxSend); ok {
			for _, dfx := range stepDVS(dvscore.EvClientSend{M: send.M}) {
				if sv, ok := dfx.(dvscore.FxSendVS); ok {
					for _, up := range stepDVS(dvscore.EvVSRecv{M: sv.M, From: p}) {
						if d, ok := up.(dvscore.FxDeliver); ok {
							stepTO(tocore.EvRecv{M: d.M, From: d.From})
						}
					}
					for _, up := range stepDVS(dvscore.EvVSSafe{M: sv.M, From: p}) {
						if s, ok := up.(dvscore.FxSafeInd); ok {
							stepTO(tocore.EvSafe{M: s.M, From: s.From})
						}
					}
				}
			}
		}
	}
	log := rec.Log()
	if len(log.DVS) == 0 || len(log.TO) == 0 {
		t.Fatalf("scripted run recorded no steps: dvs=%d to=%d", len(log.DVS), len(log.TO))
	}
	return log
}

func TestReplayCleanRun(t *testing.T) {
	log := recordedRun(t)
	rep := Replay([]NodeLog{log})
	if err := rep.Err(); err != nil {
		t.Fatalf("replay of faithful log: %v", err)
	}
	if rep.DVSSteps != len(log.DVS) || rep.TOSteps != len(log.TO) {
		t.Errorf("step counts: %s", rep)
	}
	if rep.Checks == 0 {
		t.Error("no invariant checks evaluated")
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	log := recordedRun(t)

	// Drop the effects of the first TO step that had any: the replayed core
	// re-derives them, so the checker must flag the mismatch.
	tampered := Replay([]NodeLog{tamperTO(log)})
	if tampered.OK() {
		t.Fatal("replay accepted a log with dropped TO effects")
	}
	if len(tampered.Divergences) == 0 {
		t.Fatal("expected a divergence")
	}
	d := tampered.Divergences[0]
	if d.Layer != "to" || d.Want == d.Got {
		t.Errorf("unexpected divergence: %s", d)
	}

	// Same for a DVS step.
	if rep := Replay([]NodeLog{tamperDVS(log)}); rep.OK() {
		t.Fatal("replay accepted a log with dropped DVS effects")
	}
}

func tamperTO(log NodeLog) NodeLog {
	out := log
	out.TO = append([]TORecord(nil), log.TO...)
	for i, r := range out.TO {
		if len(r.Fx) > 0 {
			out.TO[i] = TORecord{Ev: r.Ev, Fx: nil}
			break
		}
	}
	return out
}

func tamperDVS(log NodeLog) NodeLog {
	out := log
	out.DVS = append([]DVSRecord(nil), log.DVS...)
	for i, r := range out.DVS {
		if len(r.Fx) > 0 {
			out.DVS[i] = DVSRecord{Ev: r.Ev, Fx: nil}
			break
		}
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	logs := []NodeLog{recordedRun(t)}
	var buf bytes.Buffer
	if err := Encode(&buf, logs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d logs", len(decoded))
	}
	if got, want := len(decoded[0].DVS), len(logs[0].DVS); got != want {
		t.Fatalf("dvs records: got %d want %d", got, want)
	}
	if got, want := len(decoded[0].TO), len(logs[0].TO); got != want {
		t.Fatalf("to records: got %d want %d", got, want)
	}
	if err := Replay(decoded).Err(); err != nil {
		t.Fatalf("replay of decoded log: %v", err)
	}

	path := t.TempDir() + "/trace.gob"
	if err := WriteFile(path, logs); err != nil {
		t.Fatalf("write: %v", err)
	}
	fromFile, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := Replay(fromFile).Err(); err != nil {
		t.Fatalf("replay of file round trip: %v", err)
	}
}

func TestReplayEmpty(t *testing.T) {
	rep := Replay(nil)
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("empty replay not OK: %s", rep)
	}
}
