package conform

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/mcastcore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// Logs are serialized with gob: the record types hold events and effects as
// interface values, so every concrete type that can appear in a log is
// registered here.
func init() {
	for _, v := range []any{
		dvscore.EvVSNewView{}, dvscore.EvVSRecv{}, dvscore.EvVSSafe{},
		dvscore.EvClientSend{}, dvscore.EvClientRegister{},
		dvscore.FxSendVS{}, dvscore.FxDeliver{}, dvscore.FxSafeInd{},
		dvscore.FxNewPrimary{}, dvscore.FxGC{},
		tocore.EvBroadcast{}, tocore.EvNewView{}, tocore.EvRecv{}, tocore.EvSafe{},
		tocore.FxLabel{}, tocore.FxSend{}, tocore.FxConfirm{},
		tocore.FxDeliver{}, tocore.FxRegister{},
		mcastcore.EvSubmit{}, mcastcore.EvData{}, mcastcore.EvProposal{},
		mcastcore.FxSendData{}, mcastcore.FxSendProp{}, mcastcore.FxDeliver{},
		dvscore.InfoMsg{}, dvscore.RegisteredMsg{},
		tocore.LabelMsg{}, tocore.SummaryMsg{},
		types.ClientMsg(""), types.Batch{},
	} {
		gob.Register(v)
	}
}

// Encode writes the logs to w.
func Encode(w io.Writer, logs []NodeLog) error {
	return gob.NewEncoder(w).Encode(logs)
}

// Decode reads logs from r.
func Decode(r io.Reader) ([]NodeLog, error) {
	var logs []NodeLog
	if err := gob.NewDecoder(r).Decode(&logs); err != nil {
		return nil, fmt.Errorf("conform: decode trace: %w", err)
	}
	return logs, nil
}

// WriteFile writes the logs to path atomically: the encoding goes to a
// temporary file in the same directory, which is fsynced and renamed over
// path only on success. A failed encode or a crash mid-write therefore
// never leaves a torn trace at the target — the previous contents (or the
// file's absence) survive intact.
func WriteFile(path string, logs []NodeLog) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".trace-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if err = Encode(f, logs); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(f.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// ReadFile reads logs from path.
func ReadFile(path string) ([]NodeLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
