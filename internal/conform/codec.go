package conform

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// Logs are serialized with gob: the record types hold events and effects as
// interface values, so every concrete type that can appear in a log is
// registered here.
func init() {
	for _, v := range []any{
		dvscore.EvVSNewView{}, dvscore.EvVSRecv{}, dvscore.EvVSSafe{},
		dvscore.EvClientSend{}, dvscore.EvClientRegister{},
		dvscore.FxSendVS{}, dvscore.FxDeliver{}, dvscore.FxSafeInd{},
		dvscore.FxNewPrimary{}, dvscore.FxGC{},
		tocore.EvBroadcast{}, tocore.EvNewView{}, tocore.EvRecv{}, tocore.EvSafe{},
		tocore.FxLabel{}, tocore.FxSend{}, tocore.FxConfirm{},
		tocore.FxDeliver{}, tocore.FxRegister{},
		dvscore.InfoMsg{}, dvscore.RegisteredMsg{},
		tocore.LabelMsg{}, tocore.SummaryMsg{},
		types.ClientMsg(""), types.Batch{},
	} {
		gob.Register(v)
	}
}

// Encode writes the logs to w.
func Encode(w io.Writer, logs []NodeLog) error {
	return gob.NewEncoder(w).Encode(logs)
}

// Decode reads logs from r.
func Decode(r io.Reader) ([]NodeLog, error) {
	var logs []NodeLog
	if err := gob.NewDecoder(r).Decode(&logs); err != nil {
		return nil, fmt.Errorf("conform: decode trace: %w", err)
	}
	return logs, nil
}

// WriteFile writes the logs to path.
func WriteFile(path string, logs []NodeLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, logs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads logs from path.
func ReadFile(path string) ([]NodeLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
