package conform

import (
	"testing"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

func TestOnlineCheckerCleanRun(t *testing.T) {
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	// Window smaller than the run so the shadow cores age forward, Every
	// small so many samples fire.
	c := NewOnlineChecker(p, initial, true, true, true, OnlineConfig{Window: 8, Every: 4})
	driveScript(t, 20, c.ObserveDVS, c.ObserveTO, nil)

	st := c.Stats()
	if st.Steps == 0 || st.Checks == 0 {
		t.Fatalf("checker never ran: %+v", st)
	}
	if st.StepsChecked == 0 {
		t.Error("checks re-stepped no records")
	}
	if st.Divergences != 0 || st.Violations != 0 {
		t.Errorf("clean run flagged: %+v", st)
	}
	if st.LastError != "" {
		t.Errorf("clean run left an error: %s", st.LastError)
	}
}

func TestOnlineCheckerCatchesTampering(t *testing.T) {
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	c := NewOnlineChecker(p, initial, true, true, true, OnlineConfig{Window: 64, Every: 1})

	// Misreport the effects of one mid-run TO step: a corrupted shell (the
	// fault this checker exists to catch) would hand the observer an effect
	// list that does not match what the verified core derives.
	tampered := false
	skipped := 0
	obsTO := func(ev tocore.Event, fx []tocore.Effect) {
		if !tampered && len(fx) > 0 {
			if skipped < 2 { // let a couple of honest steps through first
				skipped++
			} else {
				tampered = true
				c.ObserveTO(ev, nil)
				return
			}
		}
		c.ObserveTO(ev, fx)
	}
	driveScript(t, 4, c.ObserveDVS, obsTO, nil)
	if !tampered {
		t.Fatal("script produced no TO step with effects to tamper")
	}

	st := c.Stats()
	if st.Divergences == 0 {
		t.Fatalf("tampered effect stream not flagged: %+v", st)
	}
	if st.LastError == "" {
		t.Error("divergence left no rendered error")
	}
}

func TestOnlineCheckerWindowBounded(t *testing.T) {
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	const window = 4
	c := NewOnlineChecker(p, initial, true, true, true, OnlineConfig{Window: window, Every: 1})
	driveScript(t, 30, c.ObserveDVS, c.ObserveTO, nil)

	c.mu.Lock()
	nDVS, nTO := len(c.winDVS), len(c.winTO)
	c.mu.Unlock()
	if nDVS > window || nTO > window {
		t.Errorf("window grew past the bound: dvs=%d to=%d (window %d)", nDVS, nTO, window)
	}
	st := c.Stats()
	if st.Divergences != 0 || st.Violations != 0 {
		t.Errorf("aging the shadow cores corrupted the check: %+v", st)
	}
	// Every check re-steps at most 2*window records.
	if st.Checks > 0 && st.StepsChecked > st.Checks*uint64(2*window) {
		t.Errorf("checks re-stepped more than the window: %+v", st)
	}
}

func TestOnlineCheckerDVSObservation(t *testing.T) {
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	c := NewOnlineChecker(p, initial, true, true, true, OnlineConfig{Window: 16, Every: 1})

	// Tamper a DVS-layer record instead: both layers must be covered.
	tampered := false
	obsDVS := func(ev dvscore.Event, fx []dvscore.Effect) {
		if !tampered && len(fx) > 0 {
			tampered = true
			c.ObserveDVS(ev, nil)
			return
		}
		c.ObserveDVS(ev, fx)
	}
	driveScript(t, 3, obsDVS, c.ObserveTO, nil)
	if !tampered {
		t.Fatal("script produced no DVS step with effects to tamper")
	}
	if st := c.Stats(); st.Divergences == 0 {
		t.Fatalf("tampered DVS stream not flagged: %+v", st)
	}
}
