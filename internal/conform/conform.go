// Package conform is the trace-conformance harness that closes the loop
// between the machine-checked protocol cores and the live runtime.
//
// The runtime shells (internal/dvsg, internal/tob) drive the pure cores
// (internal/protocol/dvscore, internal/protocol/tocore) through an explicit
// input-event / output-effect interface, and every macro-step is observable:
// the shell hands the recorder the input event and the exact effect sequence
// the core emitted. Because shells run steps to completion, each recorded
// step saw a quiescent core, so a per-node log is a complete, deterministic
// account of that node's protocol state evolution — independent of the
// unverified layers below it (vsg, membership, transport, the network).
//
// Replay re-executes each log through the same core code and checks two
// things:
//
//   - Per-node determinism: the replayed effect sequence of every step must
//     equal the recorded one. A divergence means the core was influenced by
//     something outside its event stream (shared-state mutation, map
//     iteration nondeterminism, version skew between recorder and replayer).
//
//   - Global safety: the replayed final states form a consistent cut (logs
//     must be harvested after every node has stopped), over which the
//     paper's invariants are evaluated — 5.1–5.6 on the DVS implementation
//     cut, 4.1–4.2 on the abstracted DVS specification state, and 6.1–6.3
//     plus confirmed-prefix agreement on the TO cut. This is the refinement
//     check of the layers the exhaustive checker cannot reach: if vsg or
//     the transport violated view synchrony, the cores would be driven into
//     states the invariants reject.
package conform

import (
	"sync"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// DVSRecord is one macro-step of the VS-TO-DVS core: the input event and
// the effect sequence it emitted.
type DVSRecord struct {
	Ev dvscore.Event
	Fx []dvscore.Effect
}

// TORecord is one macro-step of the DVS-TO-TO core.
type TORecord struct {
	Ev tocore.Event
	Fx []tocore.Effect
}

// NodeLog is the complete protocol trace of one runtime node: the core
// construction parameters plus every macro-step of both layers, in
// execution order.
type NodeLog struct {
	P        types.ProcID
	Group    types.GroupID // DVS/TO group this stack belongs to (0 in single-group runs)
	Initial  types.View
	InP0     bool
	Register bool // REGISTER mechanism enabled (tob layer)
	GC       bool // eager garbage collection enabled (dvsg layer)
	Static   bool // static-primary filter (staticcore) instead of the DVS core
	DVS      []DVSRecord
	TO       []TORecord
}

// Recorder accumulates one node's log. Observe callbacks run on the node's
// event loop; Log may be called from any goroutine, but yields a consistent
// cut only after the node has stopped.
type Recorder struct {
	mu  sync.Mutex
	log NodeLog
}

// NewRecorder starts a log for the node with the given core construction
// parameters. g tags every step with the group whose stack this node runs
// (0 in single-group runs); a replayed log set must be group-homogeneous —
// each group's run is an independent total order, so sharded runs harvest
// one log set per group. static marks a node whose view filter is the
// static-primary core (staticcore) rather than the paper's DVS automaton;
// the replayer re-executes its DVS-layer records through that core instead.
func NewRecorder(p types.ProcID, g types.GroupID, initial types.View, inP0, register, gc, static bool) *Recorder {
	return &Recorder{log: NodeLog{
		P: p, Group: g, Initial: initial.Clone(), InP0: inP0, Register: register, GC: gc, Static: static,
	}}
}

// ObserveDVS records one VS-TO-DVS macro-step; it is installed as the dvsg
// layer's Observer. Events and effects are deep-copied: the runtime keeps
// mutating the views and messages they reference.
func (r *Recorder) ObserveDVS(ev dvscore.Event, fx []dvscore.Effect) {
	rec := DVSRecord{Ev: cloneDVSEvent(ev), Fx: make([]dvscore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneDVSEffect(f)
	}
	r.mu.Lock()
	r.log.DVS = append(r.log.DVS, rec)
	r.mu.Unlock()
}

// ObserveTO records one DVS-TO-TO macro-step; it is installed as the tob
// layer's Observer.
func (r *Recorder) ObserveTO(ev tocore.Event, fx []tocore.Effect) {
	rec := TORecord{Ev: cloneTOEvent(ev), Fx: make([]tocore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneTOEffect(f)
	}
	r.mu.Lock()
	r.log.TO = append(r.log.TO, rec)
	r.mu.Unlock()
}

// Log returns a snapshot of the accumulated log. The records are shared
// with the recorder (they are never mutated after append), the slices are
// copied.
func (r *Recorder) Log() NodeLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.log
	out.DVS = append([]DVSRecord(nil), r.log.DVS...)
	out.TO = append([]TORecord(nil), r.log.TO...)
	return out
}

// cloneMsg deep-copies the mutable message types; the rest (ClientMsg,
// RegisteredMsg, LabelMsg and any test payloads) are immutable values.
// Batches are cloned recursively: the runtime reuses neither the slice nor
// the mutable members once handed down, but the recorder must not rely on
// that.
func cloneMsg(m types.Msg) types.Msg {
	switch mm := m.(type) {
	case dvscore.InfoMsg:
		return mm.Clone()
	case tocore.SummaryMsg:
		return tocore.SummaryMsg{X: mm.X.Clone()}
	case types.Batch:
		out := types.Batch{Msgs: make([]types.Msg, len(mm.Msgs))}
		for i, inner := range mm.Msgs {
			out.Msgs[i] = cloneMsg(inner)
		}
		return out
	default:
		return m
	}
}

func cloneDVSEvent(ev dvscore.Event) dvscore.Event {
	switch e := ev.(type) {
	case dvscore.EvVSNewView:
		return dvscore.EvVSNewView{View: e.View.Clone()}
	case dvscore.EvVSRecv:
		return dvscore.EvVSRecv{M: cloneMsg(e.M), From: e.From}
	case dvscore.EvVSSafe:
		return dvscore.EvVSSafe{M: cloneMsg(e.M), From: e.From}
	case dvscore.EvClientSend:
		return dvscore.EvClientSend{M: cloneMsg(e.M)}
	case dvscore.EvClientRegister:
		return e // no fields
	default:
		return ev
	}
}

func cloneDVSEffect(fx dvscore.Effect) dvscore.Effect {
	switch f := fx.(type) {
	case dvscore.FxSendVS:
		return dvscore.FxSendVS{M: cloneMsg(f.M)}
	case dvscore.FxDeliver:
		return dvscore.FxDeliver{M: cloneMsg(f.M), From: f.From}
	case dvscore.FxSafeInd:
		return dvscore.FxSafeInd{M: cloneMsg(f.M), From: f.From}
	case dvscore.FxNewPrimary:
		return dvscore.FxNewPrimary{View: f.View.Clone()}
	case dvscore.FxGC:
		return dvscore.FxGC{View: f.View.Clone()}
	default:
		return fx
	}
}

func cloneTOEvent(ev tocore.Event) tocore.Event {
	switch e := ev.(type) {
	case tocore.EvBroadcast:
		return e // payload is an immutable string
	case tocore.EvNewView:
		return tocore.EvNewView{View: e.View.Clone()}
	case tocore.EvRecv:
		return tocore.EvRecv{M: cloneMsg(e.M), From: e.From}
	case tocore.EvSafe:
		return tocore.EvSafe{M: cloneMsg(e.M), From: e.From}
	default:
		return ev
	}
}

func cloneTOEffect(fx tocore.Effect) tocore.Effect {
	switch f := fx.(type) {
	case tocore.FxLabel:
		return f // label + immutable payload, no references
	case tocore.FxSend:
		return tocore.FxSend{M: cloneMsg(f.M)}
	case tocore.FxConfirm:
		return f // no fields
	case tocore.FxDeliver:
		return f // label, origin, immutable payload
	case tocore.FxRegister:
		return tocore.FxRegister{View: f.View.Clone()}
	default:
		return fx
	}
}
