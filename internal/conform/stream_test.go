package conform

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// driveScript runs a singleton node's two cores through rounds of the same
// scripted broadcast cycle recordedRun uses, feeding every macro-step to the
// given observers (the signatures Recorder, StreamNode, and OnlineChecker
// all share). cut, if non-nil, is called between cycles — each cycle ends
// with the interface quiescent, so it is a safe place for a quiescent cut.
func driveScript(t *testing.T, rounds int,
	obsDVS func(dvscore.Event, []dvscore.Effect),
	obsTO func(tocore.Event, []tocore.Effect),
	cut func(round int)) {
	t.Helper()
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	dn := dvscore.NewNode(p, initial, true)
	tn := tocore.NewNode(p, initial, true, false)

	stepDVS := func(ev dvscore.Event) []dvscore.Effect {
		var out dvscore.Outbox
		dvscore.Step(dn, ev, true, &out)
		obsDVS(ev, out.Effects)
		return out.Effects
	}
	stepTO := func(ev tocore.Event) []tocore.Effect {
		var out tocore.Outbox
		if err := tocore.Step(tn, ev, true, &out); err != nil {
			t.Fatalf("to step: %v", err)
		}
		obsTO(ev, out.Effects)
		return out.Effects
	}

	for round := 0; round < rounds; round++ {
		for _, fx := range stepTO(tocore.EvBroadcast{A: "a" + strconv.Itoa(round)}) {
			if send, ok := fx.(tocore.FxSend); ok {
				for _, dfx := range stepDVS(dvscore.EvClientSend{M: send.M}) {
					if sv, ok := dfx.(dvscore.FxSendVS); ok {
						for _, up := range stepDVS(dvscore.EvVSRecv{M: sv.M, From: p}) {
							if d, ok := up.(dvscore.FxDeliver); ok {
								stepTO(tocore.EvRecv{M: d.M, From: d.From})
							}
						}
						for _, up := range stepDVS(dvscore.EvVSSafe{M: sv.M, From: p}) {
							if s, ok := up.(dvscore.FxSafeInd); ok {
								stepTO(tocore.EvSafe{M: s.M, From: s.From})
							}
						}
					}
				}
			}
		}
		if cut != nil {
			cut(round)
		}
	}
}

// recordStreamed drives the scripted run into both a fresh in-memory
// recorder and a chunked stream in dir, returning the in-memory log for
// verdict comparison and the recorder for its window high-water mark.
func recordStreamed(t *testing.T, dir string, opts StreamOptions, rounds int, cut func(r *StreamRecorder, round int)) (NodeLog, *StreamRecorder) {
	t.Helper()
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	sr, err := NewStreamRecorder(dir, opts)
	if err != nil {
		t.Fatalf("new stream recorder: %v", err)
	}
	sn, err := sr.Node(p, 0, initial, true, true, true, false)
	if err != nil {
		t.Fatalf("register stream node: %v", err)
	}
	rec := NewRecorder(p, 0, initial, true, true, true, false)
	driveScript(t, rounds,
		func(ev dvscore.Event, fx []dvscore.Effect) {
			rec.ObserveDVS(ev, fx)
			sn.ObserveDVS(ev, fx)
		},
		func(ev tocore.Event, fx []tocore.Effect) {
			rec.ObserveTO(ev, fx)
			sn.ObserveTO(ev, fx)
		},
		func(round int) {
			if cut != nil {
				cut(sr, round)
			}
		})
	return rec.Log(), sr
}

func TestStreamReplayMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	log, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: 4}, 6, nil)
	if err := sr.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}

	mem := Replay([]NodeLog{log})
	if err := mem.Err(); err != nil {
		t.Fatalf("in-memory replay: %v", err)
	}
	rep, err := ReplayStream(dir)
	if err != nil {
		t.Fatalf("stream replay: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("stream replay verdict: %v (%s)", err, rep)
	}
	if !rep.Sealed {
		t.Errorf("closed stream not sealed: %s", rep)
	}
	if rep.Truncated != "" {
		t.Errorf("closed stream reports truncation: %s", rep.Truncated)
	}
	if rep.Chunks < 2 {
		t.Errorf("window 4 over %d steps produced %d chunks, expected several", mem.DVSSteps+mem.TOSteps, rep.Chunks)
	}
	// Same steps replayed, same verdict: the streamed checker is the
	// in-memory checker over a different carrier.
	if rep.DVSSteps != mem.DVSSteps || rep.TOSteps != mem.TOSteps {
		t.Errorf("streamed replay covered dvs=%d/to=%d steps, in-memory dvs=%d/to=%d",
			rep.DVSSteps, rep.TOSteps, mem.DVSSteps, mem.TOSteps)
	}
	if rep.OK() != mem.OK() {
		t.Errorf("verdicts differ: streamed %v, in-memory %v", rep.OK(), mem.OK())
	}
}

func TestStreamRecorderMemoryBounded(t *testing.T) {
	dir := t.TempDir()
	const window = 8
	_, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: window}, 40, nil)
	if err := sr.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	// The recorder's buffered-record high-water mark must be bounded by the
	// window no matter how long the run was: that is the O(window) claim.
	if peak := sr.PeakWindowSteps(); peak > window {
		t.Errorf("peak buffered steps %d exceeds window %d", peak, window)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	chunks := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			chunks++
		}
	}
	if chunks < 5 {
		t.Errorf("long run spilled only %d chunks", chunks)
	}
}

func TestStreamReplayQuiescentCuts(t *testing.T) {
	dir := t.TempDir()
	// A huge step window, so the only boundaries are the explicit quiescent
	// cuts between scripted cycles plus the sealing cut from Close.
	_, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: 1 << 20}, 4,
		func(r *StreamRecorder, round int) {
			if round == 1 {
				r.Cut(true)
			}
		})
	if err := sr.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	rep, err := ReplayStream(dir)
	if err != nil {
		t.Fatalf("stream replay: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("replay with mid-run quiescent cut: %v", err)
	}
	if rep.QuiescentCuts < 2 {
		t.Errorf("expected the explicit cut plus the sealing cut, got %d quiescent cuts (%s)", rep.QuiescentCuts, rep)
	}
	if rep.Checks == 0 {
		t.Error("no cross-node invariant checks ran at the quiescent cuts")
	}
	if rep.Partial {
		t.Errorf("singleton stream reported partial coverage: %s", rep)
	}
}

func TestStreamReplayLocalizesDivergenceToChunk(t *testing.T) {
	dir := t.TempDir()
	_, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: 4}, 8, nil)
	if err := sr.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}

	// Inject a divergence mid-run: rewrite one chunk past the first with the
	// recorded effects of one TO step dropped. The replayer re-derives the
	// effects, so it must flag the mismatch — and pin it to this window.
	tamperedSeq := 0
tamper:
	for seq := 2; ; seq++ {
		var ch streamChunk
		if err := readSegment(filepath.Join(dir, chunkSeg(seq)), &ch); err != nil {
			break
		}
		for pi := range ch.Parts {
			for ri := range ch.Parts[pi].TO {
				if len(ch.Parts[pi].TO[ri].Fx) > 0 {
					ch.Parts[pi].TO[ri].Fx = nil
					if err := writeSegment(filepath.Join(dir, chunkSeg(seq)), ch); err != nil {
						t.Fatalf("rewrite chunk: %v", err)
					}
					tamperedSeq = seq
					break tamper
				}
			}
		}
	}
	if tamperedSeq == 0 {
		t.Fatal("found no TO record with effects past chunk 1 to tamper")
	}

	rep, err := ReplayStream(dir)
	if err != nil {
		t.Fatalf("stream replay: %v", err)
	}
	if rep.OK() {
		t.Fatalf("replay accepted a tampered chunk: %s", rep)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("expected a divergence")
	}
	if got := rep.Divergences[0].Window; got != tamperedSeq {
		t.Errorf("first divergence attributed to window %d, tampered chunk %d (%s)",
			got, tamperedSeq, rep.Divergences[0])
	}
}

func TestStreamReplayRecoversSealedPrefixOfTruncatedTrace(t *testing.T) {
	dir := t.TempDir()
	_, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: 4}, 8, nil)
	if err := sr.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	sealed, err := ReplayStream(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sealed.Chunks < 3 {
		t.Fatalf("need several chunks for a truncation test, got %d", sealed.Chunks)
	}

	// A crash mid-run leaves no footer and possibly a torn final chunk.
	// Simulate the worst accepted case: footer gone, last chunk cut off
	// mid-byte. The replayer must still check every intact chunk.
	if err := os.Remove(filepath.Join(dir, footerSeg)); err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, chunkSeg(sealed.Chunks))
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayStream(dir)
	if err != nil {
		t.Fatalf("replay of truncated trace must not hard-fail: %v", err)
	}
	if rep.Sealed {
		t.Error("truncated trace reported as sealed")
	}
	if rep.Truncated == "" {
		t.Error("truncated trace missing truncation reason")
	}
	if rep.Chunks != sealed.Chunks-1 {
		t.Errorf("replayed %d chunks of the %d-chunk prefix", rep.Chunks, sealed.Chunks-1)
	}
	if !rep.OK() {
		t.Errorf("intact prefix of a clean run replayed with findings: %s", rep)
	}
}

func TestStreamReplayDetectsMissingFooter(t *testing.T) {
	dir := t.TempDir()
	_, sr := recordStreamed(t, dir, StreamOptions{WindowSteps: 4}, 4, nil)
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, footerSeg)); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayStream(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sealed || !strings.Contains(rep.Truncated, "footer") {
		t.Errorf("missing footer not reported: %s", rep)
	}
}

func TestStreamRecorderRegistration(t *testing.T) {
	dir := t.TempDir()
	sr, err := NewStreamRecorder(dir, StreamOptions{WindowSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(2))
	sn, err := sr.Node(p, 0, initial, true, true, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Node(p, 0, initial, true, true, true, false); err == nil {
		t.Error("duplicate node registration accepted")
	}
	// WindowSteps 1: the first record cuts a chunk, which writes the header
	// and closes registration.
	sn.ObserveDVS(dvscore.EvClientRegister{}, nil)
	if _, err := sr.Node(types.ProcID(1), 0, initial, true, true, true, false); err == nil {
		t.Error("registration accepted after the header was written")
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestReplayRejectsDuplicateProcessLogs(t *testing.T) {
	log := recordedRun(t)
	rep := Replay([]NodeLog{log, log})
	if rep.OK() || rep.Err() == nil {
		t.Fatalf("duplicate logs for one process accepted: %s", rep)
	}
	if len(rep.Malformed) == 0 || !strings.Contains(rep.Malformed[0], "duplicate") {
		t.Errorf("expected a duplicate-process report, got %v", rep.Malformed)
	}
	// Malformed input must not be replayed at all: a second log for the same
	// process is not "the same process twice", it is two runs mixed up.
	if rep.DVSSteps != 0 || rep.TOSteps != 0 {
		t.Errorf("malformed log set was still replayed: %s", rep)
	}
}

func TestReplayRejectsDisagreeingInitialViews(t *testing.T) {
	log := recordedRun(t)
	other := NodeLog{P: 1, Initial: types.InitialView(types.RangeProcSet(2)), InP0: true}
	rep := Replay([]NodeLog{log, other})
	if rep.OK() || rep.Err() == nil {
		t.Fatalf("logs with different initial views accepted: %s", rep)
	}
	found := false
	for _, m := range rep.Malformed {
		if strings.Contains(m, "initial view") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an initial-view disagreement report, got %v", rep.Malformed)
	}
}

// unregisteredMsg is a types.Msg deliberately not registered with gob, so
// encoding a trace that contains it fails partway through.
type unregisteredMsg struct{}

func (unregisteredMsg) MsgKey() string { return "unregistered" }

func TestWriteFileFailureLeavesNoPartialTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.gob")

	good := []NodeLog{recordedRun(t)}
	if err := WriteFile(path, good); err != nil {
		t.Fatalf("write good trace: %v", err)
	}

	bad := []NodeLog{recordedRun(t)}
	bad[0].DVS = append(bad[0].DVS, DVSRecord{Ev: dvscore.EvClientSend{M: unregisteredMsg{}}})
	if err := WriteFile(path, bad); err == nil {
		t.Fatal("encoding an unregistered message type did not fail")
	}

	// The failed write must leave the previous trace intact and no temp
	// litter behind.
	logs, err := ReadFile(path)
	if err != nil {
		t.Fatalf("previous trace destroyed by failed write: %v", err)
	}
	if rep := Replay(logs); !rep.OK() {
		t.Errorf("previous trace corrupted by failed write: %s", rep)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "trace.gob" {
			t.Errorf("failed write left %s behind", e.Name())
		}
	}
}

func TestWriteFileFailureCreatesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.gob")
	bad := []NodeLog{{P: 0, DVS: []DVSRecord{{Ev: dvscore.EvClientSend{M: unregisteredMsg{}}}}}}
	if err := WriteFile(path, bad); err == nil {
		t.Fatal("encoding an unregistered message type did not fail")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed write left an artifact at %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed write left %d file(s) in the directory", len(entries))
	}
}
