package conform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/protocol/mcastcore"
	"repro/internal/types"
)

// Multicast conformance mirrors the per-node DVS/TO harness for the
// cross-group coordinator: the mcast shell's observer hands every
// macro-step of the multicast core to a recorder, and the replayer
// re-executes each log through a fresh core. Determinism is checked per
// step (same event stream, same effect sequence), and the replayed
// delivery histories are then checked against the multicast safety suite —
// per-group agreement, (timestamp, id) order, no duplicates, and the
// cross-group partial order: any two groups that both deliver two
// multi-group messages deliver them in the same relative order. The suite
// is sound over any subset of nodes and groups: every check quantifies
// only over the delivery sequences present, so a partial harvest can miss
// a violation but never fabricate one.

// McastRecord is one macro-step of the multicast core.
type McastRecord struct {
	Ev mcastcore.Event
	Fx []mcastcore.Effect
}

// McastLog is the complete multicast trace of one process: the core
// construction parameters plus every macro-step, in execution order.
type McastLog struct {
	P      types.ProcID
	Groups []types.GroupID
	Steps  []McastRecord
}

// McastRecorder accumulates one process's multicast log. Observe installs
// as the coordinator's observer (mcast.Coordinator.AddObserver); it runs
// with the coordinator mutex held, so records keep core execution order.
type McastRecorder struct {
	mu  sync.Mutex
	log McastLog
}

// NewMcastRecorder starts a log for process p over its member groups.
func NewMcastRecorder(p types.ProcID, groups []types.GroupID) *McastRecorder {
	return &McastRecorder{log: McastLog{
		P:      p,
		Groups: types.DedupGroups(append([]types.GroupID(nil), groups...)),
	}}
}

// Observe records one multicast macro-step. Events and effects are
// deep-copied: the destination slices are shared with the core.
func (r *McastRecorder) Observe(ev mcastcore.Event, fx []mcastcore.Effect) {
	rec := McastRecord{Ev: cloneMcastEvent(ev), Fx: make([]mcastcore.Effect, len(fx))}
	for i, f := range fx {
		rec.Fx[i] = cloneMcastEffect(f)
	}
	r.mu.Lock()
	r.log.Steps = append(r.log.Steps, rec)
	r.mu.Unlock()
}

// Log returns a snapshot of the accumulated log.
func (r *McastRecorder) Log() McastLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.log
	out.Groups = append([]types.GroupID(nil), r.log.Groups...)
	out.Steps = append([]McastRecord(nil), r.log.Steps...)
	return out
}

func cloneGroups(gs []types.GroupID) []types.GroupID {
	if gs == nil {
		return nil
	}
	return append([]types.GroupID(nil), gs...)
}

func cloneMcastEvent(ev mcastcore.Event) mcastcore.Event {
	switch e := ev.(type) {
	case mcastcore.EvSubmit:
		return mcastcore.EvSubmit{Dests: cloneGroups(e.Dests), Payload: e.Payload}
	case mcastcore.EvData:
		return mcastcore.EvData{Group: e.Group, ID: e.ID, Origin: e.Origin, Dests: cloneGroups(e.Dests), Payload: e.Payload}
	case mcastcore.EvProposal:
		return e // scalar fields only
	default:
		return ev
	}
}

func cloneMcastEffect(fx mcastcore.Effect) mcastcore.Effect {
	switch f := fx.(type) {
	case mcastcore.FxSendData:
		return mcastcore.FxSendData{To: f.To, ID: f.ID, Origin: f.Origin, Dests: cloneGroups(f.Dests), Payload: f.Payload}
	case mcastcore.FxSendProp:
		return f // scalar fields only
	case mcastcore.FxDeliver:
		return f // scalar fields only
	default:
		return fx
	}
}

// McastReport is the outcome of replaying a set of multicast logs.
type McastReport struct {
	Nodes       int
	Steps       int
	Checks      int
	Malformed   []string
	Divergences []Divergence // Layer "mcast"
	Violations  []Violation
}

// OK reports whether the replay was well-formed, divergence- and
// violation-free.
func (r *McastReport) OK() bool {
	return len(r.Malformed) == 0 && len(r.Divergences) == 0 && len(r.Violations) == 0
}

// Err returns nil when OK, else an error summarizing the first findings.
func (r *McastReport) Err() error {
	if r.OK() {
		return nil
	}
	var parts []string
	if n := len(r.Malformed); n > 0 {
		parts = append(parts, fmt.Sprintf("%d malformed log(s), first: %s", n, r.Malformed[0]))
	}
	if n := len(r.Divergences); n > 0 {
		parts = append(parts, fmt.Sprintf("%d divergence(s), first: %s", n, r.Divergences[0]))
	}
	if n := len(r.Violations); n > 0 {
		parts = append(parts, fmt.Sprintf("%d invariant violation(s), first: %s", n, r.Violations[0]))
	}
	return fmt.Errorf("mcast conformance: %s", strings.Join(parts, "; "))
}

// String renders a one-line summary.
func (r *McastReport) String() string {
	s := fmt.Sprintf("nodes=%d mcast_steps=%d checks=%d divergences=%d violations=%d",
		r.Nodes, r.Steps, r.Checks, len(r.Divergences), len(r.Violations))
	if len(r.Malformed) > 0 {
		s += fmt.Sprintf(" malformed=%d", len(r.Malformed))
	}
	return s
}

// ReplayMcast re-executes the recorded multicast logs through fresh cores
// and evaluates the multicast safety suite over the replayed delivery
// histories. Unlike the DVS/TO replay, the log set need not cover every
// process or every group: the checks are sound over whatever delivery
// sequences the replayed logs reconstruct.
func ReplayMcast(logs []McastLog) *McastReport {
	rep := &McastReport{Nodes: len(logs)}
	if len(logs) == 0 {
		return rep
	}
	sorted := append([]McastLog(nil), logs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P < sorted[j].P })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].P == sorted[i-1].P {
			rep.Malformed = append(rep.Malformed,
				fmt.Sprintf("duplicate multicast log for process %s", sorted[i].P))
		}
	}
	if len(rep.Malformed) > 0 {
		return rep
	}

	var seqs []mcastcore.DeliverySeq
	for _, lg := range sorted {
		n := mcastcore.NewNode(lg.P, lg.Groups)
		for i, rec := range lg.Steps {
			var out mcastcore.Outbox
			err := mcastcore.Step(n, rec.Ev, &out)
			rep.Steps++
			want, got := renderMcastEffects(rec.Fx), renderMcastEffects(out.Effects)
			if err != nil {
				// Recorded events never error: the shell drops rejected
				// events unobserved, so a replay error is a divergence.
				got = "error: " + err.Error()
			}
			if want != got {
				rep.Divergences = append(rep.Divergences, Divergence{
					P: lg.P, Layer: "mcast", Index: i,
					Event: renderMcastEvent(rec.Ev), Want: want, Got: got,
				})
			}
		}
		for _, g := range lg.Groups {
			seqs = append(seqs, mcastcore.DeliverySeq{P: lg.P, G: g, Deliveries: n.Delivered(g)})
		}
	}

	check := func(name string, f func([]mcastcore.DeliverySeq) error) {
		rep.Checks++
		if err := f(seqs); err != nil {
			rep.Violations = append(rep.Violations, Violation{Name: name, Err: err})
		}
	}
	check("MCAST-no-duplicates", mcastcore.CheckNoDuplicates)
	check("MCAST-timestamp-order", mcastcore.CheckTimestampOrder)
	check("MCAST-group-agreement", mcastcore.CheckPerGroupAgreement)
	check("MCAST-cross-group-order", mcastcore.CheckCrossGroupOrder)
	return rep
}

func renderGroups(gs []types.GroupID) string {
	parts := make([]string, len(gs))
	for i, g := range gs {
		parts[i] = strconv.Itoa(int(g))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func renderMcastEvent(ev mcastcore.Event) string {
	switch e := ev.(type) {
	case mcastcore.EvSubmit:
		return "mc-submit " + renderGroups(e.Dests) + " " + e.Payload
	case mcastcore.EvData:
		return fmt.Sprintf("mc-data %s@%s %s %s %s", e.ID, e.Group, e.Origin, renderGroups(e.Dests), e.Payload)
	case mcastcore.EvProposal:
		return fmt.Sprintf("mc-prop %s@%s from %s ts=%d", e.ID, e.Group, e.PGroup, e.TS)
	default:
		return fmt.Sprintf("event? %T", ev)
	}
}

func renderMcastEffects(fx []mcastcore.Effect) string {
	parts := make([]string, len(fx))
	for i, f := range fx {
		switch f := f.(type) {
		case mcastcore.FxSendData:
			parts[i] = fmt.Sprintf("data>%s %s %s %s %s", f.To, f.ID, f.Origin, renderGroups(f.Dests), f.Payload)
		case mcastcore.FxSendProp:
			parts[i] = fmt.Sprintf("prop>%s %s from %s ts=%d", f.To, f.ID, f.PGroup, f.TS)
		case mcastcore.FxDeliver:
			parts[i] = fmt.Sprintf("deliver %s@%s ts=%d %s", f.ID, f.Group, f.TS, f.Payload)
		default:
			parts[i] = fmt.Sprintf("effect? %T", f)
		}
	}
	return strings.Join(parts, "; ")
}
