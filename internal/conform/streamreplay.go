package conform

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/staticcore"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// StreamReport is the outcome of replaying a chunked on-disk trace. It
// embeds the per-step and invariant findings of Report; divergences and
// violations found while replaying a chunk carry that chunk's sequence
// number in their Window field, localizing the failure to the window that
// introduced it.
type StreamReport struct {
	Report
	Chunks        int    // chunks replayed
	QuiescentCuts int    // boundaries checked with the full cross-node suite
	Sealed        bool   // footer present and consistent with the replayed chunks
	Truncated     string // non-empty when the stream ended early; the reason
	Partial       bool   // cross-node checks skipped: the header does not cover every process the replayed views name
}

// String renders a one-line summary.
func (r *StreamReport) String() string {
	s := fmt.Sprintf("%s chunks=%d quiescent_cuts=%d sealed=%v",
		r.Report.String(), r.Chunks, r.QuiescentCuts, r.Sealed)
	if r.Truncated != "" {
		s += " truncated=" + fmt.Sprintf("%q", r.Truncated)
	}
	if r.Partial {
		s += " partial=true"
	}
	return s
}

// streamNodeReplay is the replay-side state of one node: its shadow cores,
// the expected start offsets of the next chunk part, and the cross-boundary
// local-check memory. Exactly one of dvs/stat is non-nil, per the node's
// recorded filter mode; filter returns whichever drives the DVS-layer
// records.
type streamNodeReplay struct {
	meta    NodeMeta
	dvs     *dvscore.Node
	stat    *staticcore.Node
	to      *tocore.Node
	dvsNext int
	toNext  int
	local   localState
}

func (n *streamNodeReplay) filter() dvscore.Filter {
	if n.stat != nil {
		return n.stat
	}
	return n.dvs
}

// ReplayStream incrementally replays a chunked trace directory written by a
// StreamRecorder. Chunks are consumed in order; each record is re-stepped
// through the shadow cores exactly as Replay does, the per-node invariant
// projections run at every chunk boundary, and the full cross-node suite
// runs at every boundary the writer marked quiescent plus the sealed end of
// the trace.
//
// Damage is reported, not fatal: a torn or missing chunk stops the replay
// with the findings of the sealed prefix (Truncated says why, Sealed stays
// false). The only hard error is an unreadable header — without it there
// are no core parameters to replay against.
func ReplayStream(dir string) (*StreamReport, error) {
	var hdr streamHeader
	if err := readSegment(filepath.Join(dir, headerSeg), &hdr); err != nil {
		return nil, fmt.Errorf("conform: stream header: %w", err)
	}
	if hdr.Version != streamVersion {
		return nil, fmt.Errorf("conform: stream version %d, this replayer understands %d", hdr.Version, streamVersion)
	}

	sr := &StreamReport{}
	sr.Nodes = len(hdr.Nodes)
	if len(hdr.Nodes) == 0 {
		sr.Sealed = sealedEmpty(dir, sr)
		return sr, nil
	}

	// The header is written from registration order (sorted by P); validate
	// the same well-formedness properties Replay does on its log set.
	metas := make([]NodeLog, len(hdr.Nodes))
	for i, m := range hdr.Nodes {
		metas[i] = NodeLog{P: m.P, Group: m.Group, Initial: m.Initial, Static: m.Static}
	}
	if !validateLogSet(&sr.Report, metas) {
		return sr, nil
	}

	static := hdr.Nodes[0].Static
	procs := make([]types.ProcID, 0, len(hdr.Nodes))
	byP := make(map[types.ProcID]*streamNodeReplay, len(hdr.Nodes))
	nodes := make([]*streamNodeReplay, 0, len(hdr.Nodes))
	dvsNodes := make(map[types.ProcID]*dvscore.Node, len(hdr.Nodes))
	statNodes := make(map[types.ProcID]*staticcore.Node, len(hdr.Nodes))
	toNodes := make(map[types.ProcID]*tocore.Node, len(hdr.Nodes))
	for _, m := range hdr.Nodes {
		n := &streamNodeReplay{
			meta: m,
			to:   tocore.NewNode(m.P, m.Initial, m.InP0, false),
		}
		if static {
			n.stat = newStaticReplayNode(m.P, m.Initial, m.InP0)
			statNodes[m.P] = n.stat
		} else {
			n.dvs = dvscore.NewNode(m.P, m.Initial, m.InP0)
			dvsNodes[m.P] = n.dvs
		}
		procs = append(procs, m.P)
		byP[m.P] = n
		nodes = append(nodes, n)
		toNodes[m.P] = n.to
	}
	initial := hdr.Nodes[0].Initial

	crossChecks := func(window int) {
		if static {
			// The static suite is sound over any subset of the group (see
			// checkStaticCut), so partial traces are never a concern here.
			checkStaticCut(&sr.Report, window, procs, statNodes, toNodes)
			return
		}
		if !cutCovered(procs, byP, dvsNodes) {
			sr.Partial = true
			return
		}
		checkCut(&sr.Report, window, procs, initial, dvsNodes, toNodes)
	}

chunks:
	for seq := 1; ; seq++ {
		var ch streamChunk
		err := readSegment(filepath.Join(dir, chunkSeg(seq)), &ch)
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		if err != nil {
			sr.Truncated = fmt.Sprintf("chunk %d: %v", seq, err)
			break
		}
		if ch.Seq != seq {
			sr.Truncated = fmt.Sprintf("chunk file %d declares sequence %d", seq, ch.Seq)
			break
		}
		for _, part := range ch.Parts {
			n, ok := byP[part.P]
			if !ok {
				sr.Truncated = fmt.Sprintf("chunk %d names process %s absent from the header", seq, part.P)
				break chunks
			}
			if part.DVSStart != n.dvsNext || part.TOStart != n.toNext {
				sr.Truncated = fmt.Sprintf("chunk %d: process %s records start at dvs=%d/to=%d, expected dvs=%d/to=%d — gap in the stream",
					seq, part.P, part.DVSStart, part.TOStart, n.dvsNext, n.toNext)
				break chunks
			}
			for i, rec := range part.DVS {
				stepDVSRecord(&sr.Report, seq, part.P, n.meta.GC, n.filter(), part.DVSStart+i, rec)
			}
			n.dvsNext += len(part.DVS)
			for i, rec := range part.TO {
				stepTORecord(&sr.Report, seq, part.P, n.meta.Register, n.to, part.TOStart+i, rec)
			}
			n.toNext += len(part.TO)
		}
		sr.Chunks++
		// Rolling cut: the per-node projections hold at every consistent
		// boundary; the cross-node suite additionally needs quiescence.
		for _, n := range nodes {
			checkLocal(&sr.Report, seq, n.meta.P, n.dvs, n.stat, n.to, &n.local)
		}
		if ch.Quiescent {
			sr.QuiescentCuts++
			crossChecks(seq)
		}
	}

	var ft streamFooter
	ferr := readSegment(filepath.Join(dir, footerSeg), &ft)
	switch {
	case sr.Truncated != "":
		// Already truncated mid-stream; the footer (if any) cannot seal it.
	case errors.Is(ferr, os.ErrNotExist):
		sr.Truncated = "missing footer — the recorder never closed (crash or still running)"
	case ferr != nil:
		sr.Truncated = fmt.Sprintf("footer: %v", ferr)
	case ft.Chunks != sr.Chunks:
		sr.Truncated = fmt.Sprintf("footer seals %d chunks, found %d", ft.Chunks, sr.Chunks)
	default:
		sr.Sealed = true
		for _, tot := range ft.Totals {
			n, ok := byP[tot.P]
			if !ok {
				sr.Malformed = append(sr.Malformed,
					fmt.Sprintf("footer totals name process %s absent from the header", tot.P))
				sr.Sealed = false
				continue
			}
			if n.dvsNext != tot.DVS || n.toNext != tot.TO {
				sr.Malformed = append(sr.Malformed,
					fmt.Sprintf("process %s replayed dvs=%d/to=%d steps, footer seals dvs=%d/to=%d",
						tot.P, n.dvsNext, n.toNext, tot.DVS, tot.TO))
				sr.Sealed = false
			}
		}
	}

	if sr.Sealed {
		// The sealed end is the recorder's Close cut: every node stopped, so
		// the final cut is quiescent whether or not the last chunk carried
		// the mark (Close writes no empty chunk). Window 0 = the final cut,
		// matching Replay's attribution.
		crossChecks(0)
	}
	return sr, nil
}

// sealedEmpty handles the degenerate zero-node stream: sealed iff the
// footer is present and seals zero chunks.
func sealedEmpty(dir string, sr *StreamReport) bool {
	var ft streamFooter
	if err := readSegment(filepath.Join(dir, footerSeg), &ft); err != nil {
		sr.Truncated = "missing footer — the recorder never closed (crash or still running)"
		return false
	}
	return ft.Chunks == 0
}

// cutCovered reports whether every process named by any replayed view is
// itself replayed. The cross-node formulas dereference the state of every
// view member, so a stream that records only a subset of the group (e.g. a
// single dvsnode's local trace) supports divergence replay and the local
// checks, but not the global suite.
func cutCovered(procs []types.ProcID, byP map[types.ProcID]*streamNodeReplay,
	dvsNodes map[types.ProcID]*dvscore.Node) bool {
	for _, p := range procs {
		for _, v := range dvsNodes[p].AttemptedShared() {
			for q := range v.Members {
				if _, ok := byP[q]; !ok {
					return false
				}
			}
		}
	}
	return true
}
