package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single package through the
// Pass and reports diagnostics; analyzers never mutate the package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directive is one parsed //lint:<name> <reason> escape comment. A directive
// applies to the source line it sits on; a directive alone on its line
// applies to the next line (so field declarations and statements can carry
// the annotation either inline or immediately above).
type directive struct {
	name   string
	reason string
	pos    token.Position
}

// knownDirectives is the closed set of escape hatches; anything else spelled
// //lint: is reported as malformed so typos cannot silently disable a check.
var knownDirectives = map[string]bool{
	"fpignore":       true, // fpcomplete: field is derived/config, not state
	"permsafe":       true, // permcomplete: field value is independent of process identities
	"clonesafe":      true, // clonecomplete: field is safe to share or re-derived
	"impure":         true, // modelpure: nondeterminism is deliberate here
	"sharedwrite":    true, // sharedmut: write through a Shared view is intended
	"fporder":        true, // fporder: iteration order provably cannot leak
	"corestep":       true, // corestep: audited fine-grained core access (checker compositions)
	"effectcomplete": true, // effectcomplete: partial union switch is intended
	"shellsafe":      true, // shellsafe: concurrency around the step loop is audited
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	*Package

	diags      *[]Diagnostic
	directives map[string]map[int][]directive // filename -> line -> directives
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Escaped reports whether an escape directive of the given name covers pos.
// Directives with an empty reason never match: the reason is the audit trail
// and the driver separately flags reasonless directives as malformed.
func (p *Pass) Escaped(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename][position.Line] {
		if d.name == name && d.reason != "" {
			return true
		}
	}
	return false
}

// parseDirectives scans every comment in the package for //lint: escapes and
// returns them keyed by the line they govern, plus diagnostics for malformed
// ones (unknown name, missing reason).
func parseDirectives(pkg *Package) (map[string]map[int][]directive, []Diagnostic) {
	byLine := make(map[string]map[int][]directive)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		code := codeLines(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				// A reason never spans an embedded comment (this lets test
				// fixtures append // want expectations after a directive).
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				reason = strings.TrimSpace(reason)
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case !knownDirectives[name]:
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown lint directive %q", name),
					})
					continue
				case reason == "":
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("lint:%s directive needs a reason", name),
					})
					continue
				}
				line := pos.Line
				// A comment alone on its line governs the next line.
				if !code[line] {
					line++
				}
				if byLine[pos.Filename] == nil {
					byLine[pos.Filename] = make(map[int][]directive)
				}
				byLine[pos.Filename][line] = append(byLine[pos.Filename][line],
					directive{name: name, reason: reason, pos: pos})
			}
		}
	}
	return byLine, bad
}

// codeLines returns the set of source lines on which some non-comment AST
// node begins; a directive comment on any other line is "alone" and governs
// the following line instead of its own.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// RunAnalyzers applies each analyzer to each package and returns all
// diagnostics sorted by position for deterministic output.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := parseDirectives(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Package:    pkg,
				diags:      &diags,
				directives: dirs,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// --- shared structural helpers used by several analyzers ---

// funcDecls maps each function/method object declared in the package to its
// declaration, the basis for intra-package reachability.
func funcDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// callee resolves the statically-known target of a call expression: a
// package-level function, a method (through the selection), or nil for
// dynamic calls (function values, interface methods bound elsewhere).
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// reachable walks the intra-package call graph from the given roots and
// returns every declaration reachable through statically-resolvable calls.
func reachable(pkg *Package, decls map[types.Object]*ast.FuncDecl, roots []types.Object) map[types.Object]bool {
	seen := make(map[types.Object]bool)
	var visit func(obj types.Object)
	visit = func(obj types.Object) {
		if obj == nil || seen[obj] {
			return
		}
		seen[obj] = true
		decl, ok := decls[obj]
		if !ok || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				visit(callee(pkg.Info, call))
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// namedStruct returns the underlying struct of a named (or pointer-to-named)
// type, or nil.
func namedStruct(t types.Type) (*types.Named, *types.Struct) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// receiverType returns the (possibly pointer-stripped) named receiver type
// of a method declaration, or nil for plain functions.
func receiverType(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isRefKind reports whether a value of type t shares mutable state when
// copied by assignment: maps, slices, pointers, channels, and any struct or
// array that (transitively) contains one. Interfaces and funcs are excluded:
// the automata treat interface-typed state (messages) as immutable values.
func isRefKind(t types.Type) bool {
	return refKind(t, make(map[types.Type]bool))
}

func refKind(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer, *types.Chan:
		return true
	case *types.Array:
		return refKind(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refKind(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
