package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFpcomplete(t *testing.T) {
	linttest.Run(t, "testdata", lint.Fpcomplete(), "./src/fpcomplete")
}
