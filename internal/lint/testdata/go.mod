module linttest

go 1.22
