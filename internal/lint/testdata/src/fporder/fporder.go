// Package fporder holds golden cases for the fporder analyzer. Fingerprinter
// here is a local stand-in; the analyzer keys on the type name and on the
// Begin/End/Str/... method contract, not on the ioa package.
package fporder

import "sort"

// Fingerprinter mimics the commutative line-folding digest.
type Fingerprinter struct{ open bool }

// Begin opens a line.
func (f *Fingerprinter) Begin(key string) { f.open = true }

// End folds the open line into the digest.
func (f *Fingerprinter) End() { f.open = false }

// Str appends to the open line.
func (f *Fingerprinter) Str(s string) {}

// Byte appends to the open line.
func (f *Fingerprinter) Byte(b byte) {}

// Int appends to the open line.
func (f *Fingerprinter) Int(i int) {}

// Add atomically emits a whole line.
func (f *Fingerprinter) Add(s string) {}

// Val is a fingerprintable element.
type Val struct{ N int }

// WriteFp streams the value into an open line.
func (v Val) WriteFp(f *Fingerprinter) { f.Int(v.N) }

// WholeLines emits one complete line per entry: commutative, clean.
func WholeLines(f *Fingerprinter, m map[string]int) {
	for k, v := range m {
		f.Begin(k)
		f.Int(v)
		f.End()
	}
}

// OpenLineLeak writes entry bytes into one open line: order leaks.
func OpenLineLeak(f *Fingerprinter, m map[string]int) {
	f.Begin("m")
	for k, v := range m { // want "map range writes into an open fingerprint line"
		f.Str(k)
		f.Int(v)
	}
	f.End()
}

// SortedKeys canonicalizes the order before writing: clean.
func SortedKeys(f *Fingerprinter, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f.Begin("m")
	for _, k := range keys {
		f.Str(k)
		f.Int(m[k])
	}
	f.End()
}

// HelperOpener emits whole lines through a same-package helper: the summary
// walk must see that beginEntry opens lines. Clean.
func HelperOpener(f *Fingerprinter, m map[string]Val) {
	for k, v := range m {
		beginEntry(f, k, v)
	}
}

func beginEntry(f *Fingerprinter, k string, v Val) {
	f.Begin(k)
	v.WriteFp(f)
	f.End()
}

// HelperWriter writes into the open line through a helper that never opens.
func HelperWriter(f *Fingerprinter, m map[string]Val) {
	f.Begin("m")
	for k, v := range m { // want "map range writes into an open fingerprint line"
		writeEntry(f, k, v)
	}
	f.End()
}

func writeEntry(f *Fingerprinter, k string, v Val) {
	f.Str(k)
	v.WriteFp(f)
}

// WriteFpLeak streams elements into the open line via their WriteFp method.
func WriteFpLeak(f *Fingerprinter, m map[string]Val) {
	f.Begin("m")
	for _, v := range m { // want "map range writes into an open fingerprint line"
		v.WriteFp(f)
	}
	f.End()
}

// Commutative is an escaped loop whose per-entry writes provably commute
// (each iteration XORs one byte into an accumulator-style sink position).
func Commutative(f *Fingerprinter, m map[string]int) {
	f.Begin("sum")
	//lint:fporder per-entry bytes are folded through a commutative accumulator
	for _, v := range m {
		f.Int(v)
	}
	f.End()
}
