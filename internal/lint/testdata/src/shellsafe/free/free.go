// Package free never calls a core Step function, so the blocking-send rule
// does not apply here: a bare send is ordinary Go.
package free

// Forward sends without a select: clean in a package that drives no core.
func Forward(ch chan<- int, v int) {
	ch <- v
}
