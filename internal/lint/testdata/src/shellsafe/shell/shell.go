// Package shell holds golden cases for the shellsafe analyzer: it drives
// the sibling core's Step from an event loop, so the blocking-send rule is
// armed for the whole package.
package shell

import "linttest/src/shellsafe/core"

// Layer is a shell holding its core: any goroutine touching it captures
// core state one field away.
type Layer struct {
	node *core.Node
	out  chan int
	stop chan struct{}
}

// Loop is the run-to-completion pump: Step on the loop goroutine is clean.
func (l *Layer) Loop(events <-chan int) {
	for ev := range events {
		core.Step(l.node, ev)
		select { // guarded send: clean
		case l.out <- l.node.X:
		default:
		}
		select { // receive case is enough of an escape hatch: clean
		case l.out <- l.node.X:
		case <-l.stop:
		}
	}
}

// node is package state for the transitive-goroutine case below.
var node = core.NewNode()

// pump steps the core; launching it concurrently breaks run-to-completion.
func pump() {
	core.Step(node, 1)
}

// BadConcurrentStep calls Step from a goroutine, through a named function.
func BadConcurrentStep() {
	go pump() // want `goroutine calls a core Step function`
}

// BadLiteralStep steps the core from a goroutine literal.
func BadLiteralStep(l *Layer) {
	go func() { // want `goroutine calls a core Step function`
		core.Step(l.node, 2)
	}()
}

// BadCapture hands live core state to a goroutine without stepping it.
func BadCapture(l *Layer) {
	go func() { // want `goroutine captures core state`
		_ = l.node.X
	}()
}

// BadArg passes core state as a goroutine argument.
func BadArg(l *Layer, f func(*core.Node)) {
	go f(l.node) // want `goroutine receives core state`
}

// AuditedGo is an escape-annotated goroutine: clean.
func AuditedGo(l *Layer) {
	//lint:shellsafe golden case: audited snapshot hand-off
	go func() {
		_ = l.node.X
	}()
}

// CleanGo captures only plain values: clean.
func CleanGo(results chan<- int, v int) {
	go func() {
		select {
		case results <- v * v:
		default:
		}
	}()
}

// BadBareSend blocks the pump if the channel is full.
func (l *Layer) BadBareSend(v int) {
	l.out <- v // want `blocking channel send in a package that drives a core Step loop`
}

// BadSendOnlySelect has no escape hatch: every case can block.
func (l *Layer) BadSendOnlySelect(v int) {
	select {
	case l.out <- v: // want `blocking channel send in a package that drives a core Step loop`
	}
}

// AuditedSend is an escape-annotated send: clean.
func (l *Layer) AuditedSend(v int) {
	l.out <- v //lint:shellsafe golden case: capacity reserved by the caller
}
