// Package core mimics a protocol core for the shellsafe golden cases: Node
// is the configured state type and Step the configured macro-step entry.
package core

// Node is the automaton state.
type Node struct{ X int }

// NewNode is the constructor.
func NewNode() *Node { return &Node{} }

// Step applies one macro-step.
func Step(n *Node, ev int) { n.X += ev }
