// Package good consumes every variant of the core union: clean, and it
// satisfies the Require entry the test configures for this package.
package good

import "linttest/src/effectcomplete/core"

// Apply handles every effect variant.
func Apply(fx core.Effect) string {
	switch fx := fx.(type) {
	case core.FxA:
		return "a"
	case core.FxB:
		return fx.S
	case core.FxC:
		return "c"
	default:
		return "?"
	}
}
