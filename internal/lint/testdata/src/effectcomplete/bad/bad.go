// Package bad holds the failing golden cases for effectcomplete.
package bad

import "linttest/src/effectcomplete/core"

// Partial drops FxC on the floor.
func Partial(fx core.Effect) string {
	switch fx.(type) { // want `type switch over linttest/src/effectcomplete/core.Effect does not handle FxC`
	case core.FxA:
		return "a"
	case core.FxB:
		return "b"
	}
	return ""
}

// DefaultIsNotEnough swallows two variants behind a default clause.
func DefaultIsNotEnough(fx core.Effect) string {
	switch fx.(type) { // want `does not handle FxB, FxC`
	case core.FxA:
		return "a"
	default:
		return "?"
	}
}

// Audited is a deliberately partial switch with an escape: clean.
func Audited(fx core.Effect) bool {
	//lint:effectcomplete golden case: probe for one variant only
	switch fx.(type) {
	case core.FxA:
		return true
	}
	return false
}

// NotAUnion switches over a plain interface: ignored.
func NotAUnion(v interface{}) bool {
	switch v.(type) {
	case int:
		return true
	}
	return false
}
