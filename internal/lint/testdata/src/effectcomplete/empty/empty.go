// Package empty consumes the union without ever switching over it; the test
// configures a Require entry for this package, so the analyzer reports the
// missing consumer switch at the package clause.
package empty // want `package linttest/src/effectcomplete/empty must contain a complete type switch`

import "linttest/src/effectcomplete/core"

// Peek type-asserts one variant instead of switching: the union is consumed,
// but nothing here would notice a new variant.
func Peek(fx core.Effect) bool {
	_, ok := fx.(core.FxA)
	return ok
}
