// Package core mimics a protocol core for the effectcomplete golden cases:
// Effect is a sealed union with three variants.
package core

// Effect is the closed effect union.
type Effect interface{ isEffect() }

// FxA is an effect variant.
type FxA struct{ N int }

// FxB is an effect variant.
type FxB struct{ S string }

// FxC is an effect variant.
type FxC struct{}

func (FxA) isEffect() {}
func (FxB) isEffect() {}
func (FxC) isEffect() {}
