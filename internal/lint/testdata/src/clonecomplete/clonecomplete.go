// Package clonecomplete holds golden cases for the clonecomplete analyzer.
package clonecomplete

// Entry is a plain value element.
type Entry struct{ K, V int }

// Good deep-copies everything: fresh map filled by loop, helper-cloned slice.
type Good struct {
	n  int
	m  map[int]int
	xs []Entry
}

// Clone is complete and deep.
func (g *Good) Clone() *Good {
	c := &Good{
		n: g.n,
		m: make(map[int]int, len(g.m)),
	}
	for k, v := range g.m {
		c.m[k] = v
	}
	c.xs = cloneSeq(g.xs)
	return c
}

func cloneSeq(xs []Entry) []Entry {
	out := make([]Entry, len(xs))
	copy(out, xs)
	return out
}

// Positional literals cover fields by index.
type Positional struct {
	a int
	b int
}

// Clone uses a positional literal.
func (p *Positional) Clone() *Positional { return &Positional{p.a, p.b} }

// Missing forgets a field entirely.
type Missing struct {
	n  int
	xs []Entry
}

// Clone forgets xs.
func (m *Missing) Clone() *Missing { // want "Missing.Clone does not copy field xs"
	return &Missing{n: m.n}
}

// Shallow aliases its map.
type Shallow struct {
	m map[int]int
}

// Clone shares the map.
func (s *Shallow) Clone() *Shallow { // want "Shallow.Clone shallow-copies reference field m"
	return &Shallow{m: s.m}
}

// Whole copies the struct wholesale without re-deepening the slice.
type Whole struct {
	n  int
	xs []int
}

// Clone's *c = *w aliases xs.
func (w *Whole) Clone() *Whole { // want "Whole.Clone shallow-copies reference field xs"
	c := &Whole{}
	*c = *w
	return c
}

// WholeFixed re-deep-copies the slice after the whole copy.
type WholeFixed struct {
	n  int
	xs []int
}

// Clone is the corrected pattern.
func (w *WholeFixed) Clone() *WholeFixed {
	c := &WholeFixed{}
	*c = *w
	c.xs = append([]int(nil), w.xs...)
	return c
}

// Delegate clones through its constructor; the delegation walk credits the
// constructor's assignments.
type Delegate struct {
	a  int
	xs []int
}

// NewDelegate copies its slice argument.
func NewDelegate(a int, xs []int) *Delegate {
	cp := make([]int, len(xs))
	copy(cp, xs)
	return &Delegate{a: a, xs: cp}
}

// Clone delegates.
func (d *Delegate) Clone() *Delegate { return NewDelegate(d.a, d.xs) }

// Escaped shares a field by design.
type Escaped struct {
	//lint:clonesafe immutable lookup table shared by every clone on purpose
	tbl map[int]int
}

// Clone shares tbl under the escape.
func (e *Escaped) Clone() *Escaped { return &Escaped{tbl: e.tbl} }
