// Package sharedmut holds golden cases for the sharedmut analyzer.
package sharedmut

import "sort"

// State mimics an automaton node with zero-clone accessors.
type State struct {
	items map[string]int
	list  []int
}

// ItemsShared returns the live map without cloning.
func (s *State) ItemsShared() map[string]int { return s.items }

// ListShared returns the live slice without cloning.
func (s *State) ListShared() []int { return s.list }

// Items returns a defensive copy; writes through it are fine.
func (s *State) Items() map[string]int {
	m := make(map[string]int, len(s.items))
	for k, v := range s.items {
		m[k] = v
	}
	return m
}

// ReadOnly only reads through shared views: clean.
func ReadOnly(s *State) int {
	total := 0
	for _, v := range s.ItemsShared() {
		total += v
	}
	for _, v := range s.ListShared() {
		total += v
	}
	return total
}

// DirectWrite assigns through the call result itself.
func DirectWrite(s *State) {
	s.ItemsShared()["x"] = 1 // want "write through zero-clone Shared view"
}

// ViaLocal writes through a variable holding the view.
func ViaLocal(s *State) {
	m := s.ItemsShared()
	m["x"] = 1     // want "write through zero-clone Shared view"
	delete(m, "y") // want "delete from zero-clone Shared view"
}

// ViaCopyChain tracks aliases through copies and reslices.
func ViaCopyChain(s *State) {
	xs := s.ListShared()
	tail := xs[1:]
	tail[0] = 7 // want "write through zero-clone Shared view"
}

// AppendInPlace may scribble on the shared backing array.
func AppendInPlace(s *State) []int {
	xs := s.ListShared()
	return append(xs, 9) // want "append to zero-clone Shared view"
}

// SortsShared reorders the live backing array.
func SortsShared(s *State) {
	xs := s.ListShared()
	sort.Ints(xs) // want "sort.Ints reorders a zero-clone Shared view"
}

// Bump increments an element in place.
func Bump(s *State) {
	s.ListShared()[0]++ // want "increment through zero-clone Shared view"
}

// MutateCopy writes through the cloning accessor: clean.
func MutateCopy(s *State) {
	m := s.Items()
	m["x"] = 1
}

// Rebuild deliberately mutates in place under an escape.
func Rebuild(s *State) {
	m := s.ItemsShared()
	//lint:sharedwrite single-owner reset path, no frontier aliases exist yet
	m["x"] = 1
}
