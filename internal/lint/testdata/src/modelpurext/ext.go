// Package modelpurext is NOT configured as a pure package: the clock is fair
// game here, but the global-math/rand ban still applies module-wide.
package modelpurext

import (
	"math/rand"
	"time"
)

// Stamp may read the clock outside the model packages.
func Stamp() time.Time {
	return time.Now()
}

// Jitter still must not use the global source.
func Jitter(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn`
}

// SeededJitter is the approved pattern.
func SeededJitter(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}
