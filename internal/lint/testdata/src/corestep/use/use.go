// Package use holds golden cases for the corestep analyzer: it consumes the
// sibling core package from outside the configured core prefix.
package use

import "linttest/src/corestep/core"

// ReadSanctioned only touches the roster: clean.
func ReadSanctioned(n *core.Node) int {
	return n.P()
}

// DriveStep goes through the macro-step seam: clean.
func DriveStep(n *core.Node) {
	core.Step(n, 1)
}

// DirectTransition calls a fine-grained transition.
func DirectTransition(n *core.Node) {
	n.Mutate(7) // want `core.Node.Mutate is a core transition`
}

// MethodValue smuggles the transition out as a value.
func MethodValue(n *core.Node) func(int) {
	return n.Mutate // want `core.Node.Mutate is a core transition`
}

// Audited carries an escape with a reason: clean.
func Audited(n *core.Node) {
	n.Mutate(8) //lint:corestep golden case: audited composition
}

// AliasWrite mutates the state through the Info alias.
func AliasWrite(n *core.Node) {
	info, ok := n.Info()
	if ok {
		info[0] = 99 // want `index write through a value aliasing interior core state`
	}
}

// AliasCopyWrite taints through a plain copy of the alias.
func AliasCopyWrite(n *core.Node) {
	info, _ := n.Info()
	view := info
	view[0]++ // want `increment through a value aliasing interior core state`
}

// AliasAppend appends through the alias (may write the shared backing array).
func AliasAppend(n *core.Node) []int {
	info, _ := n.Info()
	return append(info, 1) // want `append through a value aliasing interior core state`
}

// AliasRead only reads the alias: clean.
func AliasRead(n *core.Node) int {
	info, _ := n.Info()
	total := 0
	for _, v := range info {
		total += v
	}
	return total
}

// ViaFilter reads through the seam interface: clean (roster methods only).
func ViaFilter(f core.Filter) int {
	return f.P()
}

// Rogue implements the filter interface outside the core tree.
type Rogue struct{} // want `Rogue implements Filter outside linttest/src/corestep/core`

// P makes Rogue a Filter.
func (Rogue) P() int { return 0 }

// Info completes the Filter method set.
func (Rogue) Info() ([]int, bool) { return nil, false }

// Sanctioned is an audited filter implementation: clean.
//
//lint:corestep golden case: audited out-of-tree filter
type Sanctioned struct{}

// P makes Sanctioned a Filter.
func (Sanctioned) P() int { return 1 }

// Info completes the Filter method set.
func (Sanctioned) Info() ([]int, bool) { return nil, false }
