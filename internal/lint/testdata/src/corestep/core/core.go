// Package core mimics a protocol core for the corestep golden cases: the
// test configures it as the core package (skipped), with Node as a state
// type whose sanctioned roster is {P, Info} and Info as an alias accessor.
package core

// Node is the automaton state.
type Node struct {
	p     int
	queue []int
}

// NewNode is a constructor; package functions are always allowed.
func NewNode(p int) *Node { return &Node{p: p} }

// P is a sanctioned read-only accessor.
func (n *Node) P() int { return n.p }

// Info is sanctioned but returns an interior alias of the state.
func (n *Node) Info() ([]int, bool) { return n.queue, len(n.queue) > 0 }

// Mutate is a fine-grained transition: not on the roster.
func (n *Node) Mutate(v int) { n.queue = append(n.queue, v) }

// Filter is the seam interface the test configures as a filter interface.
type Filter interface {
	P() int
	Info() ([]int, bool)
}

// Step drives the automaton; consumers outside this package must use it.
func Step(n *Node, ev int) { n.Mutate(ev) }
