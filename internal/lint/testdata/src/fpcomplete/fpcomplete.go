// Package fpcomplete holds golden cases for the fpcomplete analyzer.
package fpcomplete

// W is a minimal fingerprint sink; fpcomplete keys on method names
// (WriteFp/Fingerprint/AddFingerprint), not on the sink's type.
type W struct{}

// Int writes one int.
func (W) Int(int) {}

// Str writes one string.
func (W) Str(string) {}

// Good streams every field.
type Good struct {
	A int
	B int
}

// WriteFp covers A and B.
func (g Good) WriteFp(w W) {
	w.Int(g.A)
	w.Int(g.B)
}

// ViaHelper reads one field through a same-package helper; the call-graph
// walk must credit it.
type ViaHelper struct {
	A int
	B int
}

// Fingerprint covers B directly and A via writeA.
func (v ViaHelper) Fingerprint(w W) {
	v.writeA(w)
	w.Int(v.B)
}

func (v ViaHelper) writeA(w W) { w.Int(v.A) }

// Bad misses field B on the fingerprint path.
type Bad struct {
	A int
	B int // want "field Bad.B is never read on the fingerprint path"
}

// WriteFp forgets B.
func (b Bad) WriteFp(w W) {
	w.Int(b.A)
}

// Ignored documents a derived field with a justified escape.
type Ignored struct {
	A int
	//lint:fpignore recomputed from A on demand, never part of state identity
	sum int
}

// WriteFp covers A; sum is escaped.
func (i Ignored) WriteFp(w W) { w.Int(i.A) }

// BadEscape has a reasonless escape: it must NOT suppress the finding, and
// the directive itself is flagged.
type BadEscape struct {
	A int
	B int //lint:fpignore // want "directive needs a reason" "field BadEscape.B is never read"
}

// WriteFp forgets B.
func (b BadEscape) WriteFp(w W) { w.Int(b.A) }

// Typo'd directives are flagged rather than silently ignored.
type TypoDirective struct {
	A int
	B int //lint:fpignored oops // want "unknown lint directive" "field TypoDirective.B is never read"
}

// WriteFp forgets B.
func (t TypoDirective) WriteFp(w W) { w.Int(t.A) }
