// Package permcomplete holds golden cases for the permcomplete analyzer:
// every field read on the fingerprint path must also be read on the
// permutation path, or carry //lint:permsafe.
package permcomplete

// Perm stands in for the repo's types.Perm.
type Perm map[int]int

// Good permutes every fingerprinted field: clean.
type Good struct {
	owner int
	marks map[int]bool
}

func (g *Good) Fingerprint() int { return g.owner + len(g.marks) }

func (g *Good) Permute(pi Perm) *Good {
	out := &Good{owner: pi[g.owner], marks: make(map[int]bool, len(g.marks))}
	for k, v := range g.marks {
		out.marks[pi[k]] = v
	}
	return out
}

// Bad fingerprints marks but its Permute never reads the field, so the
// permuted state silently loses it.
type Bad struct {
	owner int
	marks map[int]bool // want "field Bad.marks is fingerprinted but never read on the permutation path"
}

func (b *Bad) Fingerprint() int { return b.owner + len(b.marks) }

func (b *Bad) Permute(pi Perm) *Bad {
	return &Bad{owner: pi[b.owner]}
}

// Escaped documents the deliberate carry-over of an identity-free field.
type Escaped struct {
	owner int
	round int //lint:permsafe counts protocol rounds, not process ids
	cfg   int
}

func (e *Escaped) Fingerprint() int { return e.owner + e.round }

func (e *Escaped) Permute(pi Perm) *Escaped {
	return &Escaped{owner: pi[e.owner]}
}

// cfg is not on the fingerprint path, so Permute ignoring it is fine: no
// diagnostic despite the missing read.

// Delegated reaches the field through a same-package helper on the
// permutation path: the reachability walk must credit it.
type Delegated struct {
	owner int
	marks map[int]bool
}

func (d *Delegated) Fingerprint() int { return d.owner + len(d.marks) }

func (d *Delegated) Permute(pi Perm) *Delegated {
	return &Delegated{owner: pi[d.owner], marks: permuteMarks(pi, d)}
}

func permuteMarks(pi Perm, d *Delegated) map[int]bool {
	out := make(map[int]bool, len(d.marks))
	for k, v := range d.marks {
		out[pi[k]] = v
	}
	return out
}

// Unfingerprinted has a Permute method but no fingerprint method: out of
// scope, no diagnostics.
type Unfingerprinted struct {
	owner int
}

func (u *Unfingerprinted) Permute(pi Perm) *Unfingerprinted {
	return &Unfingerprinted{owner: pi[u.owner]}
}

// Msg exercises the PermuteMsg root: wire messages use the same contract.
type Msg struct {
	origin int
	body   string // want "field Msg.body is fingerprinted but never read on the permutation path"
}

func (m Msg) Fingerprint() int { return m.origin + len(m.body) }

func (m Msg) PermuteMsg(pi Perm) Msg {
	return Msg{origin: pi[m.origin]}
}
