// Package modelpure holds golden cases for the modelpure analyzer; the test
// configures it with this package as a pure package and report.go as an
// allowed-time file.
package modelpure

import (
	"math/rand"
	"os"
	"time"
)

// Transition models a pure transition that reaches for the wall clock.
func Transition() int64 {
	t := time.Now() // want "time.Now in model code"
	return t.Unix()
}

// Configure reads the environment from model code.
func Configure() string {
	return os.Getenv("DVS_MODE") // want "os.Getenv in model code"
}

// Pick draws from the process-global RNG.
func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn`
}

// Seeded uses the approved per-instance constructor chain: clean.
func Seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Delay is deliberate nondeterminism under an escape.
func Delay() time.Time {
	//lint:impure wall-clock used only to stamp a debug artifact filename
	return time.Now()
}

// Scale uses a time constant, which is always fine.
func Scale(d time.Duration) time.Duration {
	return d * time.Second / time.Millisecond
}
