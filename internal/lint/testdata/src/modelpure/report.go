package modelpure

import "time"

// Elapsed lives in an AllowTimeFiles file: wall-clock reads are permitted
// because report timing never feeds transitions or fingerprints.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
