package modelpure

// state exercises the receiver-purity rule on the symmetry hooks:
// Canonicalize and Orbit run on states already admitted to the explorer's
// seen-set, so mutating the receiver corrupts the exploration.
type state struct {
	a, b int
	log  []int
	memo map[int]int
}

func (s *state) Canonicalize() *state {
	if s.a > s.b {
		s.a, s.b = s.b, s.a // want "assignment in state.Canonicalize mutates the receiver"
	}
	cp := *s
	cp.a, cp.b = cp.b, cp.a // clean: the clone is ours to reorder
	return &cp
}

func (s *state) Orbit() []*state {
	s.log = append(s.log, s.a) // want "assignment in state.Orbit mutates the receiver"
	delete(s.memo, s.a)        // want "delete in state.Orbit mutates the receiver"
	return []*state{s}
}

// counter documents an escaped mutation: a memoization side table that is
// deliberately not model state.
type counter struct {
	repr *state
	hits int
}

func (c *counter) Canonicalize() *state {
	c.hits++ //lint:impure memoization counter, not model state
	return c.repr
}

// value has a value receiver: the receiver is already a private copy, so
// mutate-and-return is the pure idiom and stays silent.
type value struct {
	n int
}

func (v value) Canonicalize() value {
	v.n = 0
	return v
}
