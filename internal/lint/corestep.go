package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CorestepConfig scopes the corestep analyzer to a repository's protocol
// cores: the packages under CorePkgPrefix own the automaton state, and the
// rest of the tree may touch it only through the macro-step seam.
type CorestepConfig struct {
	// CorePkgPrefix is the import-path prefix of the pure protocol cores.
	// Packages under it are exempt: they ARE the automata.
	CorePkgPrefix string
	// StateTypes maps each qualified core state type ("path.Name", pointer
	// stripped) to its sanctioned method roster: constructors aside, these
	// are the only selectors the rest of the tree may use on that type.
	// Everything else — transitions, enabling predicates, queue heads — is
	// the automaton's own business and must be driven through Step.
	StateTypes map[string][]string
	// AliasAccessors names sanctioned methods (on any state type) whose
	// results alias interior core state without copying. Values derived
	// from them are tracked per function; writing through such a value is
	// reported even though the accessor call itself is sanctioned.
	AliasAccessors []string
	// FilterIfaces lists qualified interface names ("path.Name") that
	// protocol filters implement. A named type outside CorePkgPrefix
	// implementing one is reported: new filters belong under the protocol
	// tree, as extracted pure cores, or they dodge every core analyzer.
	FilterIfaces []string
}

// DefaultCorestepConfig returns the corestep configuration for this
// repository: the dvscore/tocore/staticcore state types with their
// read-only accessor rosters, the two Info accessors as alias sources, and
// the dvscore.Filter seam.
func DefaultCorestepConfig() CorestepConfig {
	return CorestepConfig{
		CorePkgPrefix: "repro/internal/protocol/",
		StateTypes: map[string][]string{
			"repro/internal/protocol/dvscore.Node": {
				"P", "Cur", "ClientCur", "Act", "Amb", "Use",
				"Attempted", "AttemptedShared", "HasAttempted", "Reg",
				"InfoSent", "InfoRcvd",
				"MsgsToVS", "MsgsFromVS", "SafeFromVS",
				"MsgsToVSShared", "MsgsFromVSLen", "SafeFromVSLen",
				"RegisteredIDs", "Clone", "AddFingerprint", "Permute",
			},
			// The shell seam: consumers holding a Filter may only observe
			// the client-facing projection the paper's DVS interface
			// exports; every transition goes through Step.
			"repro/internal/protocol/dvscore.Filter": {
				"ClientCur", "Amb",
			},
			"repro/internal/protocol/tocore.Node": {
				"P", "Current", "Status", "HighPrimary", "Established",
				"BuildOrder", "Order", "ConfirmedOrder", "Content",
				"GotState", "NextReport", "NextConfirm", "Summary",
				"Clone", "AddFingerprint", "DelayLen", "SelfLabeledCount",
				"GotStateShared", "BuildOrderShared", "ConfirmedShared",
				"Permute",
			},
			"repro/internal/protocol/staticcore.Node": {
				"P", "ClientCur", "Amb", "Quorum",
			},
			"repro/internal/protocol/mcastcore.Node": {
				"P", "Groups", "Clock", "PendingCount",
				"Delivered", "DeliveredCount",
				"Clone", "AddFingerprint",
			},
		},
		AliasAccessors: []string{"InfoSent", "InfoRcvd"},
		FilterIfaces:   []string{"repro/internal/protocol/dvscore.Filter"},
	}
}

// Corestep returns the corestep analyzer: no package outside the protocol
// cores may read or write core state except through Step, the Outbox, and
// the sanctioned accessor rosters. Three rules:
//
//   - any selection of an unsanctioned method on a core state type (call,
//     method value, or method expression) is reported — these are the
//     fine-grained transitions only Step may compose;
//   - values obtained from alias accessors (InfoSent/InfoRcvd return
//     interior views/slices without copying) are tracked per function in
//     the style of sharedmut, and writes through them are reported;
//   - a named type outside the core tree implementing a filter interface
//     is reported: protocol filters must be extracted as pure cores.
//
// The checker compositions in internal/core and internal/toimpl drive the
// fine-grained IOA actions by design; their sites carry audited
// //lint:corestep escapes (DESIGN.md §6.9).
func Corestep(cfg CorestepConfig) *Analyzer {
	sanctioned := make(map[string]map[string]bool, len(cfg.StateTypes))
	for tname, roster := range cfg.StateTypes {
		m := make(map[string]bool, len(roster))
		for _, name := range roster {
			m[name] = true
		}
		sanctioned[tname] = m
	}
	aliasAcc := make(map[string]bool, len(cfg.AliasAccessors))
	for _, name := range cfg.AliasAccessors {
		m := false
		for _, roster := range sanctioned {
			if roster[name] {
				m = true
			}
		}
		if !m {
			// An alias accessor outside every roster would never fire;
			// treat as configured anyway so fixtures can use small rosters.
			_ = m
		}
		aliasAcc[name] = true
	}

	a := &Analyzer{
		Name: "corestep",
		Doc:  "core state is touched only via Step/Outbox/sanctioned accessors (escape: //lint:corestep)",
	}
	a.Run = func(pass *Pass) {
		if strings.HasPrefix(pass.Path, cfg.CorePkgPrefix) {
			return
		}
		checkFilterImpls(pass, cfg)
		for _, f := range pass.Files {
			checkStateSelections(pass, cfg, sanctioned, f)
		}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					checkAliasWrites(pass, cfg, sanctioned, aliasAcc, fd)
				}
			}
		}
	}
	return a
}

// stateTypeName returns the qualified name of t's pointer-stripped named
// type ("path.Name"), or "" if t is not named.
func stateTypeName(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// checkStateSelections is rule 1: every selector whose receiver is a
// configured state type must name a sanctioned method.
func checkStateSelections(pass *Pass, cfg CorestepConfig, sanctioned map[string]map[string]bool, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok {
			return true // qualified identifier, not a selection
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return true // field selections can't cross the package boundary: core fields are unexported
		}
		recv := stateTypeName(s.Recv())
		roster, isState := sanctioned[recv]
		if !isState || roster[fn.Name()] {
			return true
		}
		if pass.Escaped(sel.Pos(), "corestep") {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is a core transition, not a sanctioned accessor: drive the automaton through Step and consume the Outbox, or annotate //lint:corestep <reason>",
			recv, fn.Name())
		return true
	})
}

// checkAliasWrites is rule 2: per-function taint from alias-accessor calls
// (values aliasing interior core state), flagging writes through them.
func checkAliasWrites(pass *Pass, cfg CorestepConfig, sanctioned map[string]map[string]bool, aliasAcc map[string]bool, fd *ast.FuncDecl) {
	info := pass.Info

	// isAliasCall: a call to a configured alias accessor on a state type.
	isAliasCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		s, ok := info.Selections[sel]
		if !ok {
			return false
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok || !aliasAcc[fn.Name()] {
			return false
		}
		_, isState := sanctioned[stateTypeName(s.Recv())]
		return isState
	}

	// Pass 1: fixed-point over assignments. Multi-value forms (v, ok :=
	// n.InfoSent(g)) taint every left-hand ident, conservatively.
	tainted := make(map[types.Object]bool)
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	// rootIdent unwraps selector/index/slice paths to their root identifier.
	var rootIdent func(e ast.Expr) *ast.Ident
	rootIdent = func(e ast.Expr) *ast.Ident {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return rootIdent(x.X)
		case *ast.IndexExpr:
			return rootIdent(x.X)
		case *ast.SliceExpr:
			return rootIdent(x.X)
		}
		return nil
	}
	taintedPath := func(e ast.Expr) bool {
		if isAliasCall(e) {
			return true
		}
		if id := rootIdent(e); id != nil {
			return tainted[info.Uses[id]]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				if obj := lhsObj(lhs); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			if len(as.Lhs) != len(as.Rhs) {
				// v, ok := n.InfoSent(g): one call, many results.
				if len(as.Rhs) == 1 && isAliasCall(as.Rhs[0]) {
					for _, lhs := range as.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if taintedPath(as.Rhs[i]) {
					mark(lhs)
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, what string) {
		if pass.Escaped(pos.Pos(), "corestep") {
			return
		}
		pass.Reportf(pos.Pos(),
			"%s through a value aliasing interior core state (alias accessor result): mutates the automaton behind Step's back — clone first or annotate //lint:corestep <reason>", what)
	}

	// Pass 2: flag mutations through tainted paths.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if taintedPath(l.X) {
						report(l, "index write")
					}
				case *ast.SelectorExpr:
					if idx, ok := ast.Unparen(l.X).(*ast.IndexExpr); ok && taintedPath(idx.X) {
						report(l, "element field write")
					} else if taintedPath(l.X) {
						report(l, "field write")
					}
				}
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if (fun.Name == "delete" || fun.Name == "append") && len(n.Args) >= 1 && taintedPath(n.Args[0]) {
					report(n, fun.Name)
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[id].(*types.PkgName); ok {
						p := pn.Imported().Path()
						if (p == "sort" || p == "slices") && len(n.Args) >= 1 && taintedPath(n.Args[0]) {
							report(n, "in-place sort")
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && taintedPath(idx.X) {
				report(n, "increment")
			}
		}
		return true
	})
}

// checkFilterImpls is rule 3: named non-core types implementing a filter
// interface.
func checkFilterImpls(pass *Pass, cfg CorestepConfig) {
	var ifaces []*types.Interface
	var inames []string
	for _, qname := range cfg.FilterIfaces {
		if it, name := lookupInterface(pass.Pkg, qname); it != nil {
			ifaces = append(ifaces, it)
			inames = append(inames, name)
		}
	}
	if len(ifaces) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() { // aliases denote the original type
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				t := obj.Type()
				if types.IsInterface(t) {
					continue
				}
				for i, it := range ifaces {
					if !types.Implements(t, it) && !types.Implements(types.NewPointer(t), it) {
						continue
					}
					if pass.Escaped(ts.Pos(), "corestep") {
						continue
					}
					pass.Reportf(ts.Pos(),
						"%s implements %s outside %s: protocol filters must be extracted as pure cores under the protocol tree (see internal/protocol/staticcore), or annotate //lint:corestep <reason>",
						obj.Name(), inames[i], strings.TrimSuffix(cfg.CorePkgPrefix, "/"))
				}
			}
		}
	}
}

// lookupInterface resolves a qualified interface name ("path.Name") through
// the package's transitive imports. Returns nil when the package cannot
// even see the interface's package — then nothing in it can be checked
// against the seam, and nothing needs to be.
func lookupInterface(pkg *types.Package, qname string) (*types.Interface, string) {
	i := strings.LastIndex(qname, ".")
	if i < 0 {
		return nil, ""
	}
	path, name := qname[:i], qname[i+1:]
	dep := findImport(pkg, path, make(map[string]bool))
	if dep == nil {
		return nil, ""
	}
	obj, ok := dep.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil, ""
	}
	it, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, ""
	}
	return it, name
}

// findImport walks the transitive imports of pkg for the given path.
func findImport(pkg *types.Package, path string, seen map[string]bool) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	if seen[pkg.Path()] {
		return nil
	}
	seen[pkg.Path()] = true
	for _, dep := range pkg.Imports() {
		if found := findImport(dep, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// rosterNames returns a sorted copy of a roster map's keys; used by the
// -list output in cmd/dvslint to document sanctioned accessors.
func rosterNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
