package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// ModelpureConfig scopes the determinism check.
type ModelpureConfig struct {
	// PurePkgs lists import-path prefixes whose transition/enumeration code
	// must be fully deterministic: no wall clocks, no environment reads, no
	// global RNG. Seed-replay of counterexamples depends on it.
	PurePkgs []string
	// AllowTimeFiles lists path suffixes (e.g. "internal/ioa/report.go") of
	// files inside pure packages that may read the wall clock: the check
	// reports' timing fields, which never feed transitions or fingerprints.
	AllowTimeFiles []string
	// GlobalRandEverywhere extends the global-math/rand ban to every package
	// analyzed, not just the pure ones: all randomness in the module (jitter,
	// loss, latency) must flow from seeded per-instance RNGs so that runs
	// are reproducible from their seeds.
	GlobalRandEverywhere bool
}

// bannedTime / bannedOS are the nondeterminism sources forbidden in pure
// packages. Conversions and constants (time.Second) remain fine.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}
var bannedOS = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true}

// allowedGlobalRand are the only package-level math/rand identifiers usable
// anywhere: constructors for seeded per-instance generators and the types
// themselves. Everything else (rand.Intn, rand.Shuffle, rand.Read, ...)
// draws from the process-global source and breaks seed reproduction.
var allowedGlobalRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// pureReceiverMethods are the ioa.Symmetric hooks whose contract forbids
// mutating the receiver: Canonicalize runs on states already admitted to
// the seen-set, and Orbit runs on states mid-audit, so an in-place tweak
// corrupts the exploration behind the deduplicator's back.
var pureReceiverMethods = map[string]bool{"Canonicalize": true, "Orbit": true}

// Modelpure returns the modelpure analyzer for the given scope. Escapes:
// //lint:impure <reason> on the offending line.
func Modelpure(cfg ModelpureConfig) *Analyzer {
	a := &Analyzer{
		Name: "modelpure",
		Doc:  "model code must be deterministic: no time.Now/os.Getenv/global math/rand, and Canonicalize/Orbit must not mutate their receiver (escape: //lint:impure)",
	}
	a.Run = func(pass *Pass) {
		pure := false
		for _, p := range cfg.PurePkgs {
			if pass.Path == p || strings.HasPrefix(pass.Path, p+"/") {
				pure = true
				break
			}
		}
		if !pure && !cfg.GlobalRandEverywhere {
			return
		}
		for _, f := range pass.Files {
			filename := pass.Fset.Position(f.Pos()).Filename
			timeAllowed := !pure
			for _, suffix := range cfg.AllowTimeFiles {
				if strings.HasSuffix(slashPath(filename), suffix) {
					timeAllowed = true
					break
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				if pass.Escaped(sel.Pos(), "impure") {
					return true
				}
				name := sel.Sel.Name
				switch pkgName.Imported().Path() {
				case "time":
					if pure && !timeAllowed && bannedTime[name] {
						pass.Reportf(sel.Pos(),
							"time.%s in model code: transitions must be deterministic for seed replay (move timing to the report layer or annotate //lint:impure <reason>)", name)
					}
				case "os":
					if pure && bannedOS[name] {
						pass.Reportf(sel.Pos(),
							"os.%s in model code: environment reads make runs irreproducible (plumb configuration explicitly or annotate //lint:impure <reason>)", name)
					}
				case "math/rand", "math/rand/v2":
					if !allowedGlobalRand[name] {
						pass.Reportf(sel.Pos(),
							"global math/rand.%s: draws from the process-global source and breaks seed reproduction — use a seeded *rand.Rand instance (or annotate //lint:impure <reason>)", name)
					}
				}
				return true
			})
			if pure {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Body == nil || !pureReceiverMethods[fd.Name.Name] {
						continue
					}
					checkReceiverPurity(pass, fd)
				}
			}
		}
	}
	return a
}

// checkReceiverPurity reports writes through the receiver of a
// Canonicalize/Orbit method: assignments and ++/-- rooted at the receiver,
// and the mutating builtins delete/copy applied to receiver storage.
// Mutating a local copy (cp := *s; cp.x = ...) is the intended idiom and
// stays silent.
func checkReceiverPurity(pass *Pass, fd *ast.FuncDecl) {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return // anonymous receiver: nothing to mutate through
	}
	recv := pass.Info.Defs[names[0]]
	if recv == nil {
		return
	}
	if _, ok := recv.Type().(*types.Pointer); !ok {
		// A value receiver is already a private copy: mutate-and-return is
		// the pure idiom, not a hazard.
		return
	}
	viaRecv := func(e ast.Expr) bool {
		root := rootIdent(e)
		return root != nil && pass.Info.Uses[root] == recv
	}
	report := func(n ast.Node, what string) {
		if pass.Escaped(n.Pos(), "impure") {
			return
		}
		pass.Reportf(n.Pos(),
			"%s in %s.%s mutates the receiver: the hook runs on states already admitted to the seen-set, so in-place changes corrupt the exploration — work on a clone (or annotate //lint:impure <reason>)",
			what, receiverTypeName(pass, fd), fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if viaRecv(lhs) {
					report(n, "assignment")
					break
				}
			}
		case *ast.IncDecStmt:
			if viaRecv(n.X) {
				report(n, n.Tok.String())
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "delete", "copy":
					if viaRecv(n.Args[0]) {
						report(n, b.Name())
					}
				}
			}
		}
		return true
	})
}

// rootIdent descends selector/index/slice/star chains to the base
// identifier of an lvalue, or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// receiverTypeName names the receiver's type for diagnostics, tolerating
// pointer receivers.
func receiverTypeName(pass *Pass, fd *ast.FuncDecl) string {
	if named := receiverType(pass.Info, fd); named != nil {
		return named.Obj().Name()
	}
	return "receiver"
}

// slashPath normalizes a filename to slash form for suffix matching.
func slashPath(name string) string {
	return path.Clean(strings.ReplaceAll(name, "\\", "/"))
}
