// Package lint is a domain-specific static-analysis suite that
// machine-enforces the automaton discipline the checker's soundness rests
// on: fingerprint completeness, deep clones, model determinism, read-only
// use of zero-clone Shared accessors, and canonical iteration order on the
// fingerprint path (DESIGN.md §6.4).
//
// The suite is deliberately self-contained: it drives `go list -export` for
// package metadata and export data and type-checks target packages from
// source with go/types, so it needs nothing beyond the standard library and
// the go toolchain already required to build the tree.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package, ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath     string
	Name           string
	Dir            string
	Export         string
	GoFiles        []string
	IgnoredGoFiles []string
	DepOnly        bool
	Standard       bool
	Error          *struct{ Err string }
}

// Load runs `go list -deps -export -json patterns...` in dir and
// type-checks every non-dep-only, non-stdlib package from source.
// Dependencies (including the targets' mutual imports) are satisfied from
// the toolchain's export data, so loading is fast and needs no network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
