// The module path sits under repro/ so the fixtures may import the
// repository's internal packages; the replace directive resolves them
// against the enclosing checkout.
module repro/internal/lint/badedit

go 1.22

require repro v0.0.0

replace repro => ../../..
