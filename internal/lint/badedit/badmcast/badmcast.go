// Package badmcast breaks the multicast core's macro-step discipline both
// ways the analyzers guard: it fires fine-grained mc transitions directly
// (corestep) and consumes mcastcore.Effect with a switch that drops
// variants behind default: (effectcomplete).
package badmcast

import (
	"repro/internal/protocol/mcastcore"
	"repro/internal/types"
)

// HijackData orders a data frame straight into the core, skipping Step's
// validation (canonical dests, carrier membership) and the drain that
// delivers finalized messages.
func HijackData(n *mcastcore.Node, g types.GroupID, id string, origin types.ProcID, payload string) {
	n.OnData(g, id, origin, []types.GroupID{g}, payload)
}

// HijackProposal bumps a group clock from outside the seam.
func HijackProposal(n *mcastcore.Node, g types.GroupID, id string, ts uint64) {
	n.OnProposal(g, g, id, ts)
}

// StealID burns a message id without ever broadcasting it, desynchronizing
// the node's id sequence from its recorded event stream.
func StealID(n *mcastcore.Node) string {
	return n.OnSubmit()
}

// Apply handles the send effects but silently swallows FxDeliver — the
// variant-dropping switch that loses finalized multicast deliveries when a
// shell drifts from its core.
func Apply(fx mcastcore.Effect) string {
	switch fx := fx.(type) {
	case mcastcore.FxSendData:
		return "data>" + fx.To.String()
	case mcastcore.FxSendProp:
		return "prop>" + fx.To.String()
	default:
		return ""
	}
}
