// Package baddvsg reaches into the DVS core directly instead of driving it
// through Step: every function here must be reported by corestep.
package baddvsg

import (
	"repro/internal/protocol/dvscore"
	"repro/internal/types"
)

// HijackRegister fires a fine-grained transition from outside the core.
func HijackRegister(n *dvscore.Node) {
	n.OnDVSRegister()
}

// InjectSend drives the send transition without the Step seam.
func InjectSend(n *dvscore.Node, m types.Msg) {
	n.OnDVSGpSnd(m)
}

// CorruptInfo writes through the interior alias InfoSent returns, mutating
// the automaton's ambiguous-view history behind Step's back.
func CorruptInfo(n *dvscore.Node, g types.ViewID, v types.View) {
	info, ok := n.InfoSent(g)
	if ok && len(info.Amb) > 0 {
		info.Amb[0] = v
	}
}
