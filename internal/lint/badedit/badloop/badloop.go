// Package badloop breaks the run-to-completion discipline around the TO
// core's step loop: shellsafe must report every function here.
package badloop

import "repro/internal/protocol/tocore"

// Loop is the legitimate pump; it arms the blocking-send rule for the
// package by calling Step on the loop goroutine.
func Loop(n *tocore.Node, events <-chan tocore.Event, out chan<- string) {
	for ev := range events {
		var box tocore.Outbox
		if err := tocore.Step(n, ev, true, &box); err != nil {
			return
		}
		for _, fx := range box.Effects {
			if d, ok := fx.(tocore.FxDeliver); ok {
				out <- d.A // bare send: wedges the pump when out is full
			}
		}
	}
}

// ConcurrentStep races the automaton from a second goroutine.
func ConcurrentStep(n *tocore.Node, ev tocore.Event) {
	go func() {
		var box tocore.Outbox
		_ = tocore.Step(n, ev, true, &box)
	}()
}

// LeakState hands the live core to a goroutine that merely reads it — still
// a torn read whenever the loop is mid-macro-step.
func LeakState(n *tocore.Node, report chan<- string) {
	go func() {
		select {
		case report <- n.Summary().String():
		default:
		}
	}()
}
