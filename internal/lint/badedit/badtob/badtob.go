// Package badtob consumes the TO core's effects with a switch that drops
// variants behind default: effectcomplete must report it.
package badtob

import "repro/internal/protocol/tocore"

// Apply handles sends and deliveries but silently swallows FxLabel,
// FxConfirm and FxRegister — exactly the edit that desynchronizes a shell
// from its core when a new Effect is added.
func Apply(fx tocore.Effect) string {
	switch fx := fx.(type) {
	case tocore.FxSend:
		return "send"
	case tocore.FxDeliver:
		return fx.A
	default:
		return ""
	}
}
