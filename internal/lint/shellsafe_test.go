package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestShellsafe(t *testing.T) {
	cfg := lint.ShellsafeConfig{
		CorePkgPrefix: "linttest/src/shellsafe/core",
		StepFuncs:     []string{"linttest/src/shellsafe/core.Step"},
		StateTypes:    []string{"linttest/src/shellsafe/core.Node"},
	}
	linttest.Run(t, "testdata", lint.Shellsafe(cfg), "./src/shellsafe/...")
}
