package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Sharedmut returns the sharedmut analyzer. Methods whose name ends in
// "Shared" are this repository's zero-clone accessors: they return interior
// maps/slices of an automaton's state without copying, so invariant checkers
// and environments can read them allocation-free. Writing through such a
// view corrupts the live state that every sibling frontier entry aliases.
// The analyzer flags, per function body:
//
//   - index/field assignment through a shared view (v[k] = x, delete(v, k))
//   - append with a shared view as first argument (may write the shared
//     backing array in place when capacity allows)
//   - passing a shared view to sort.Slice/sort.Sort/slices.Sort* (reorders
//     the shared backing array)
//
// Tracking is a simple per-function dataflow: a variable is "shared" if it
// is assigned from a *Shared call or from another shared variable.
// Deliberate writes carry //lint:sharedwrite <reason>.
func Sharedmut() *Analyzer {
	a := &Analyzer{
		Name: "sharedmut",
		Doc:  "results of zero-clone *Shared accessors must not be written through (escape: //lint:sharedwrite)",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkSharedMut(pass, fd)
			}
		}
	}
	return a
}

// isSharedCall reports whether e is a call to a method named *Shared.
func isSharedCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := callee(info, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	return strings.HasSuffix(name, "Shared") && name != "Shared"
}

func checkSharedMut(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Pass 1: fixed-point over simple assignments to find variables holding
	// shared views (v := x.FooShared(); w := v; ...).
	shared := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || shared[obj] {
					continue
				}
				rhs := ast.Unparen(as.Rhs[i])
				src := false
				if isSharedCall(info, rhs) {
					src = true
				} else if rid, ok := rhs.(*ast.Ident); ok && shared[info.Uses[rid]] {
					src = true
				} else if sl, ok := rhs.(*ast.SliceExpr); ok {
					// v2 := v[1:] keeps the shared backing array.
					if sid, ok := ast.Unparen(sl.X).(*ast.Ident); ok && shared[info.Uses[sid]] {
						src = true
					}
				}
				if src {
					shared[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// isSharedView: expression is a shared call or a shared-tracked variable.
	isSharedView := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isSharedCall(info, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			return shared[info.Uses[id]]
		}
		return false
	}

	// Pass 2: flag mutations through shared views.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if isSharedView(l.X) && !pass.Escaped(l.Pos(), "sharedwrite") {
						pass.Reportf(l.Pos(),
							"write through zero-clone Shared view: mutates live automaton state aliased by other frontier entries — clone first or annotate //lint:sharedwrite <reason>")
					}
				case *ast.SelectorExpr:
					// v[i].Field = x hides the index inside the selector.
					if idx, ok := ast.Unparen(l.X).(*ast.IndexExpr); ok && isSharedView(idx.X) && !pass.Escaped(l.Pos(), "sharedwrite") {
						pass.Reportf(l.Pos(),
							"field write into element of zero-clone Shared view — clone first or annotate //lint:sharedwrite <reason>")
					}
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(n.Args) >= 1 && isSharedView(n.Args[0]) &&
					!pass.Escaped(n.Pos(), "sharedwrite") {
					pass.Reportf(n.Pos(),
						"delete from zero-clone Shared view mutates live automaton state — clone first or annotate //lint:sharedwrite <reason>")
				}
				if fun.Name == "append" && len(n.Args) >= 1 && isSharedView(n.Args[0]) &&
					!pass.Escaped(n.Pos(), "sharedwrite") {
					pass.Reportf(n.Pos(),
						"append to zero-clone Shared view may write its backing array in place — copy with CloneSeq/append(nil, ...) or annotate //lint:sharedwrite <reason>")
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[id].(*types.PkgName); ok {
						p := pn.Imported().Path()
						if (p == "sort" || p == "slices") && len(n.Args) >= 1 && isSharedView(n.Args[0]) &&
							!pass.Escaped(n.Pos(), "sharedwrite") {
							pass.Reportf(n.Pos(),
								"%s.%s reorders a zero-clone Shared view's backing array in place — sort a copy or annotate //lint:sharedwrite <reason>", id.Name, fun.Sel.Name)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isSharedView(idx.X) && !pass.Escaped(n.Pos(), "sharedwrite") {
				pass.Reportf(n.Pos(),
					"increment through zero-clone Shared view mutates live automaton state — clone first or annotate //lint:sharedwrite <reason>")
			}
		}
		return true
	})
}
