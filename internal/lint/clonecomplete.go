package lint

import (
	"go/ast"
	"go/types"
)

// Clonecomplete returns the clonecomplete analyzer. For every method named
// Clone on a named struct type it verifies that (a) every field of the
// receiver's struct is assigned into the cloned value — via composite
// literal keys, positional literals, x.f = ... statements, or a whole-struct
// copy — and (b) no reference-carrying field (map/slice/pointer/chan, or a
// struct containing one) is left sharing the receiver's backing storage.
// Invariant checkers and environments mutate cloned automata; a shallow
// field aliases every sibling state in the BFS frontier.
//
// The analysis follows same-package delegation (Clone methods that return a
// constructor call are credited with the constructor's assignments), and a
// local variable assigned from a call, make, or composite literal counts as
// fresh storage. Deliberately shared fields carry //lint:clonesafe <reason>
// on their declaration.
func Clonecomplete() *Analyzer {
	a := &Analyzer{
		Name: "clonecomplete",
		Doc:  "Clone methods must assign every field and deep-copy reference fields (escape: //lint:clonesafe)",
	}
	a.Run = func(pass *Pass) {
		decls := funcDecls(pass.Package)
		for obj, fd := range decls {
			if obj.Name() != "Clone" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverType(pass.Info, fd)
			if named == nil {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			checkClone(pass, decls, obj, fd, named, st)
		}
	}
	return a
}

// fieldFate tracks what a Clone path does with one receiver field.
type fieldFate struct {
	assigned bool // some assignment or literal key covers the field
	deep     bool // at least one covering assignment is not a bare share
}

// checkClone inspects one Clone method plus every same-package function it
// statically reaches (so delegation to constructors is understood).
func checkClone(pass *Pass, decls map[types.Object]*ast.FuncDecl, cloneObj types.Object, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	fates := make(map[*types.Var]*fieldFate, st.NumFields())
	fieldByName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fates[f] = &fieldFate{}
		fieldByName[f.Name()] = f
	}

	isRecvType := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, ok := t.(*types.Named)
		return ok && n.Obj() == named.Obj()
	}

	for obj := range reachable(pass.Package, decls, []types.Object{cloneObj}) {
		decl, ok := decls[obj]
		if !ok || decl.Body == nil {
			continue
		}
		scanCloneBody(pass, decl.Body, isRecvType, fieldByName, fates, st)
	}

	recvName := named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		fate := fates[field]
		if pass.Escaped(field.Pos(), "clonesafe") {
			continue
		}
		switch {
		case !fate.assigned:
			pass.Reportf(fd.Pos(),
				"%s.Clone does not copy field %s; the clone starts from a zero/stale value — copy it or annotate the field //lint:clonesafe <reason>",
				recvName, field.Name())
		case !fate.deep && isRefKind(field.Type()):
			pass.Reportf(fd.Pos(),
				"%s.Clone shallow-copies reference field %s (%s); mutations through the clone alias the original — deep-copy it or annotate //lint:clonesafe <reason>",
				recvName, field.Name(), field.Type().String())
		}
	}
}

// scanCloneBody records field assignments found in one function body.
func scanCloneBody(pass *Pass, body ast.Node, isRecvType func(types.Type) bool, fieldByName map[string]*types.Var, fates map[*types.Var]*fieldFate, st *types.Struct) {
	info := pass.Info
	fresh := freshLocals(info, body)

	// shallowExpr reports whether assigning expr shares backing storage: a
	// field selector (b.f = a.f) or a local that was never assigned fresh
	// storage. Calls, literals, make/new, and fresh locals are deep.
	shallowExpr := func(expr ast.Expr) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				return true
			}
			return false
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
				return !fresh[v]
			}
			return false
		}
		return false
	}

	record := func(field *types.Var, rhs ast.Expr) {
		fate := fates[field]
		if fate == nil {
			return
		}
		fate.assigned = true
		if !shallowExpr(rhs) {
			fate.deep = true
		}
	}

	// wholeCopy marks every field assigned-but-shallow, the semantics of
	// b := *a / *b = *a / b := a (value receiver): values copy, references
	// alias until reassigned deep.
	wholeCopy := func() {
		for _, fate := range fates {
			fate.assigned = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || !isRecvType(tv.Type) {
				return true
			}
			if len(n.Elts) > 0 {
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
					for i, elt := range n.Elts {
						if i < st.NumFields() {
							record(st.Field(i), elt)
						}
					}
					return true
				}
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if f := fieldByName[key.Name]; f != nil {
						record(f, kv.Value)
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// b.f = rhs where b has the receiver's type.
					v, ok := info.Uses[l.Sel].(*types.Var)
					if !ok || !v.IsField() || fates[v] == nil {
						continue
					}
					if tv, ok := info.Types[l.X]; ok && isRecvType(tv.Type) && rhs != nil {
						record(v, rhs)
					}
				case *ast.StarExpr:
					// *b = *a whole-struct copy.
					if rhs == nil {
						continue
					}
					if tv, ok := info.Types[l]; ok && isRecvType(tv.Type) {
						if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
							if rtv, ok := info.Types[star]; ok && isRecvType(rtv.Type) {
								wholeCopy()
							}
						}
					}
				case *ast.Ident:
					if rhs == nil {
						continue
					}
					if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
						// b := *a whole-struct copy into a fresh variable.
						if rtv, ok := info.Types[star]; ok && isRecvType(rtv.Type) {
							wholeCopy()
						}
					} else if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
						// b := a of the receiver's value type: whole copy.
						if tv, ok := info.Types[id]; ok && isRecvType(tv.Type) {
							if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
								wholeCopy()
							}
						}
					}
				}
			}
		}
		return true
	})
}

// freshLocals returns the local variables in body that are ever assigned
// freshly-allocated storage: a call result (make, append, constructors,
// Clone), a composite literal, or new.
func freshLocals(info *types.Info, body ast.Node) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var obj types.Object
			if d := info.Defs[id]; d != nil {
				obj = d
			} else {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				fresh[v] = true
			case *ast.CompositeLit:
				fresh[v] = true
			case *ast.UnaryExpr:
				if _, isLit := rhs.X.(*ast.CompositeLit); isLit && rhs.Op.String() == "&" {
					fresh[v] = true
				}
			}
		}
		return true
	})
	return fresh
}
