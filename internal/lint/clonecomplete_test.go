package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestClonecomplete(t *testing.T) {
	linttest.Run(t, "testdata", lint.Clonecomplete(), "./src/clonecomplete")
}
