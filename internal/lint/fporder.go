package lint

import (
	"go/ast"
	"go/types"
)

// Fporder returns the fporder analyzer. The Fingerprinter folds finished
// Begin/End lines into a commutative digest, so ranging over a map and
// emitting one whole line per entry is canonical by construction. What is
// NOT canonical is writing value bytes into an already-open line from inside
// a map range: the open line's FNV state is order-sensitive, so map
// iteration order leaks straight into the fingerprint and equal states hash
// differently across runs (the bug class ProcSet.WriteFp's insertion sort
// exists to prevent).
//
// The analyzer flags any `for range` over a map whose body writes to a
// fingerprint sink (a Fingerprinter or FpWriter value) without opening a
// line (Begin/Add/AddInt) inside the same body — directly or through a
// same-package helper. Loops whose per-entry writes are provably
// order-insensitive can carry //lint:fporder <reason>.
func Fporder() *Analyzer {
	a := &Analyzer{
		Name: "fporder",
		Doc:  "map ranges must not write into an open fingerprint line (escape: //lint:fporder)",
	}
	a.Run = func(pass *Pass) {
		decls := funcDecls(pass.Package)
		sums := fpCallSummaries(pass, decls)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				writes, opens := bodyFpEffects(pass, sums, rng.Body)
				if writes && !opens && !pass.Escaped(rng.Pos(), "fporder") {
					pass.Reportf(rng.Pos(),
						"map range writes into an open fingerprint line: iteration order leaks into the digest — emit whole Begin/End lines per entry, iterate sorted keys, or annotate //lint:fporder <reason>")
				}
				return true
			})
		}
	}
	return a
}

// lineOpeners are sink methods that start (or atomically emit) a line;
// a body containing one emits whole lines and is commutative-safe.
var lineOpeners = map[string]bool{"Begin": true, "Add": true, "AddInt": true}

// sinkWriters are sink methods that append bytes to the open line.
var sinkWriters = map[string]bool{
	"Str": true, "Byte": true, "Int": true, "Uint": true, "WriteFp": true,
}

// isFpSinkType reports whether t is (a pointer to) a fingerprint sink: a
// named type called Fingerprinter or an interface named FpWriter, in any
// package. Name-based detection keeps the analyzer independent of the ioa
// package so its own testdata can model the contract.
func isFpSinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Fingerprinter" || name == "FpWriter"
}

// fpEffects summarizes whether a function writes sink bytes / opens lines.
type fpEffects struct{ writes, opens bool }

// fpCallSummaries computes, for every function in the package, whether it
// (transitively) writes to or opens lines on a fingerprint sink — so that
// helpers like writeEntriesFp/beginProcViewFp are understood at call sites.
func fpCallSummaries(pass *Pass, decls map[types.Object]*ast.FuncDecl) map[types.Object]fpEffects {
	sums := make(map[types.Object]fpEffects, len(decls))
	// Fixed point: direct effects first, then propagate through calls.
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			if fd.Body == nil {
				continue
			}
			cur := sums[obj]
			writes, opens := directFpEffects(pass, sums, fd.Body)
			next := fpEffects{cur.writes || writes, cur.opens || opens}
			if next != cur {
				sums[obj] = next
				changed = true
			}
		}
	}
	return sums
}

// directFpEffects scans one body for sink-method calls and calls to
// summarized same-package functions.
func directFpEffects(pass *Pass, sums map[types.Object]fpEffects, body ast.Node) (writes, opens bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recvTV, ok := pass.Info.Types[sel.X]; ok && isFpSinkType(recvTV.Type) {
				if sinkWriters[sel.Sel.Name] {
					writes = true
				}
				if lineOpeners[sel.Sel.Name] {
					opens = true
				}
				return true
			}
		}
		// WriteFp-style calls pass the sink as an argument; helper functions
		// contribute their computed summaries.
		obj := callee(pass.Info, call)
		sinkArg := false
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isFpSinkType(tv.Type) {
				sinkArg = true
				break
			}
		}
		if obj != nil {
			if s, ok := sums[obj]; ok {
				writes = writes || s.writes
				opens = opens || s.opens
				return true
			}
			// Method named WriteFp taking the sink: writes by contract.
			if sinkArg && obj.Name() == "WriteFp" {
				writes = true
				return true
			}
		}
		if sinkArg {
			// Unknown callee receiving the sink (cross-package helper,
			// interface method): assume it writes without opening — the
			// conservative direction for this check.
			writes = true
		}
		return true
	})
	return writes, opens
}

// bodyFpEffects reports whether a range body writes to / opens lines on a
// sink, reusing the per-function summaries for same-package helpers.
func bodyFpEffects(pass *Pass, sums map[types.Object]fpEffects, body ast.Node) (writes, opens bool) {
	return directFpEffects(pass, sums, body)
}
