package lint

import (
	"go/types"
)

// permuteMethodNames are the roots of the permutation path: the symmetry
// hooks of the checked automata (Permute) and of permutable wire messages
// (PermuteMsg).
var permuteMethodNames = map[string]bool{
	"Permute":    true,
	"PermuteMsg": true,
}

// Permcomplete returns the permcomplete analyzer: for every struct type
// that has both a fingerprint method and a permutation method, each field
// read on the fingerprint path must also be read on the permutation path.
// A fingerprinted field the permutation cannot see keeps its unpermuted
// value in π(s), so Canonicalize(π(s)) and Canonicalize(s) disagree and the
// symmetry reduction silently drops reachable orbits. Fields whose value is
// genuinely independent of process identities (and therefore carried over
// verbatim without being mentioned) carry //lint:permsafe <reason> on their
// declaration.
func Permcomplete() *Analyzer {
	a := &Analyzer{
		Name: "permcomplete",
		Doc:  "every fingerprinted field must reach its type's Permute method (or carry //lint:permsafe)",
	}
	a.Run = func(pass *Pass) {
		decls := funcDecls(pass.Package)

		fpRoots := make(map[*types.Named][]types.Object)
		permRoots := make(map[*types.Named][]types.Object)
		for obj, fd := range decls {
			if fd.Recv == nil {
				continue
			}
			var into map[*types.Named][]types.Object
			switch {
			case fingerprintMethodNames[fd.Name.Name]:
				into = fpRoots
			case permuteMethodNames[fd.Name.Name]:
				into = permRoots
			default:
				continue
			}
			named := receiverType(pass.Info, fd)
			if named == nil {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			into[named] = append(into[named], obj)
		}

		for named, perms := range permRoots {
			fps := fpRoots[named]
			if len(fps) == 0 {
				continue // fingerprint-free types have no merge hazard to guard
			}
			st := named.Underlying().(*types.Struct)
			onFp := fieldsRead(pass, decls, fps)
			onPerm := fieldsRead(pass, decls, perms)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if !onFp[field] || onPerm[field] {
					continue
				}
				if pass.Escaped(field.Pos(), "permsafe") {
					continue
				}
				pass.Reportf(field.Pos(),
					"field %s.%s is fingerprinted but never read on the permutation path (%s); permuted states keep the unpermuted value, breaking canonicalization — permute it or annotate //lint:permsafe <reason>",
					named.Obj().Name(), field.Name(), methodNames(perms))
			}
		}
	}
	return a
}
