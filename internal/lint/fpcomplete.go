package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// fingerprintMethodNames are the roots of the fingerprint path: ioa.Automaton
// implementations (Fingerprint), streamed value renderers (WriteFp), and the
// per-node composite contributors (AddFingerprint).
var fingerprintMethodNames = map[string]bool{
	"Fingerprint":    true,
	"WriteFp":        true,
	"AddFingerprint": true,
}

// Fpcomplete returns the fpcomplete analyzer: for every struct type with a
// fingerprint method, each field must be read somewhere on the fingerprint
// path (the method itself plus every same-package function it statically
// reaches). A field the fingerprint cannot see silently merges distinct
// states in the seen-set, voiding exhaustive-exploration claims, so missing
// fields are errors; genuinely derived or configuration fields carry a
// //lint:fpignore <reason> on their declaration.
func Fpcomplete() *Analyzer {
	a := &Analyzer{
		Name: "fpcomplete",
		Doc:  "every struct field must reach its type's fingerprint method (or carry //lint:fpignore)",
	}
	a.Run = func(pass *Pass) {
		decls := funcDecls(pass.Package)

		// Group fingerprint methods by their receiver's named struct type.
		roots := make(map[*types.Named][]types.Object)
		for obj, fd := range decls {
			if fd.Recv == nil || !fingerprintMethodNames[fd.Name.Name] {
				continue
			}
			named := receiverType(pass.Info, fd)
			if named == nil {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			roots[named] = append(roots[named], obj)
		}

		for named, methods := range roots {
			st := named.Underlying().(*types.Struct)
			read := fieldsRead(pass, decls, methods)
			// Deterministic order over types sharing a file is handled by
			// the driver's position sort; fields are reported in order.
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if read[field] {
					continue
				}
				if pass.Escaped(field.Pos(), "fpignore") {
					continue
				}
				pass.Reportf(field.Pos(),
					"field %s.%s is never read on the fingerprint path (%s); distinct states will merge — fingerprint it or annotate //lint:fpignore <reason>",
					named.Obj().Name(), field.Name(), methodNames(methods))
			}
		}
	}
	return a
}

// fieldsRead walks every function reachable from the fingerprint roots and
// records which struct fields are read, both by direct selection (s.f) and
// through promoted selections of embedded fields.
func fieldsRead(pass *Pass, decls map[types.Object]*ast.FuncDecl, methods []types.Object) map[*types.Var]bool {
	read := make(map[*types.Var]bool)
	for obj := range reachable(pass.Package, decls, methods) {
		fd, ok := decls[obj]
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[n].(*types.Var); ok && v.IsField() {
					read[v] = true
				}
			case *ast.SelectorExpr:
				// Promoted selections traverse embedded fields that never
				// appear as idents; credit every field on the path.
				if sel, ok := pass.Info.Selections[n]; ok {
					t := sel.Recv()
					for _, idx := range sel.Index() {
						if ptr, ok := t.Underlying().(*types.Pointer); ok {
							t = ptr.Elem()
						}
						st, ok := t.Underlying().(*types.Struct)
						if !ok || idx >= st.NumFields() {
							// The final index of a method selection names the
							// method, not a field.
							break
						}
						f := st.Field(idx)
						read[f] = true
						t = f.Type()
					}
				}
			}
			return true
		})
	}
	return read
}

func methodNames(methods []types.Object) string {
	names := make([]string, 0, len(methods))
	for _, m := range methods {
		names = append(names, m.Name())
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
