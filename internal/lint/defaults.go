package lint

// DefaultAnalyzers returns the full dvslint suite configured for this
// repository, in the order diagnostics should be grouped when positions tie.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Fpcomplete(),
		Permcomplete(),
		Clonecomplete(),
		Modelpure(DefaultModelpureConfig()),
		Sharedmut(),
		Fporder(),
		Corestep(DefaultCorestepConfig()),
		Effectcomplete(DefaultEffectcompleteConfig()),
		Shellsafe(DefaultShellsafeConfig()),
	}
}

// DefaultModelpureConfig scopes the determinism check to this repository's
// model packages, with the documented timing-field allowances. Every package
// listed here feeds either the model checker's seed-replay or the trace
// conformance replayer, so all of it must be free of wall clocks,
// environment reads, and global randomness.
func DefaultModelpureConfig() ModelpureConfig {
	return ModelpureConfig{
		PurePkgs: []string{
			"repro/internal/spec",
			"repro/internal/core",
			"repro/internal/toimpl",
			// The extracted protocol cores single-source the checked automata
			// and the live runtime: both the explorer and the trace replayer
			// re-execute them, so determinism is load-bearing twice over.
			"repro/internal/protocol/dvscore",
			"repro/internal/protocol/tocore",
			"repro/internal/protocol/staticcore",
			"repro/internal/protocol/mcastcore",
			// The conformance recorder/replayer must re-derive recorded
			// effects bit-for-bit from the event stream alone.
			"repro/internal/conform",
			"repro/internal/ioa",
			"repro/internal/naive",
			// The runtime shells around the cores: thin translation layers
			// with no protocol state of their own, kept to the same
			// determinism standard so macro-steps replay exactly.
			"repro/internal/dvsg",
			"repro/internal/tob",
			"repro/internal/mcast",
			"repro/internal/staticp",
			"repro/internal/member",
			"repro/internal/types",
			"repro/internal/quorum",
		},
		AllowTimeFiles: []string{
			"internal/ioa/report.go",
			"internal/ioa/explore.go",
			"internal/ioa/refine.go",
			"internal/ioa/rng.go",
			// The online checker measures its own latency (it is the
			// overhead budget E13 tracks); the timing never influences what
			// is checked or how records replay.
			"internal/conform/online.go",
		},
		GlobalRandEverywhere: true,
	}
}
