package lint

// DefaultAnalyzers returns the full dvslint suite configured for this
// repository, in the order diagnostics should be grouped when positions tie.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Fpcomplete(),
		Clonecomplete(),
		Modelpure(DefaultModelpureConfig()),
		Sharedmut(),
		Fporder(),
	}
}
