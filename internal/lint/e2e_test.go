package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestTreeIsClean is the gate the PR lands on: the default analyzer suite
// over the whole module must report nothing. Every justified exception in the
// tree is expressed as a //lint:* directive with a reason, so a regression
// here is either a real discipline violation or a missing annotation.
func TestTreeIsClean(t *testing.T) {
	pkgs, err := lint.Load(".", "repro/...")
	if err != nil {
		t.Fatalf("loading repro/...: %v", err)
	}
	diags := lint.RunAnalyzers(pkgs, lint.DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestFpcompleteCatchesDeletedWrite proves the acceptance criterion end to
// end: deleting one field write from a WriteFp in a scratch module makes
// fpcomplete fail, and restoring it makes the module clean again.
func TestFpcompleteCatchesDeletedWrite(t *testing.T) {
	const broken = `package scratch

type W struct{}

func (W) Int(int) {}

type Label struct {
	ID    int
	Seqno int
}

func (a Label) WriteFp(w W) {
	w.Int(a.Seqno)
}
`
	diags := runOnScratch(t, broken)
	found := false
	for _, d := range diags {
		if d.Analyzer == "fpcomplete" && strings.Contains(d.Message, "field Label.ID") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deleting the ID write did not trip fpcomplete; got %v", diags)
	}

	fixed := strings.Replace(broken, "w.Int(a.Seqno)", "w.Int(a.ID)\n\tw.Int(a.Seqno)", 1)
	if diags := runOnScratch(t, fixed); len(diags) != 0 {
		t.Fatalf("fixed scratch module should be clean, got %v", diags)
	}
}

// runOnScratch writes src as a one-file module in a temp dir and runs the
// default analyzer suite over it.
func runOnScratch(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	return lint.RunAnalyzers(pkgs, lint.DefaultAnalyzers())
}

// TestBadEditFixturesAreCaught pins the negative end-to-end guarantee: the
// seeded-bad-edit module under badedit/ (direct core access from a shell, a
// type switch dropping Effect variants, goroutines breaking run-to-completion
// around Step) must keep failing the default suite. scripts/check.sh and CI
// run the same check through cmd/dvslint and require a nonzero exit.
func TestBadEditFixturesAreCaught(t *testing.T) {
	pkgs, err := lint.Load("badedit", "./...")
	if err != nil {
		t.Fatalf("loading badedit fixtures: %v", err)
	}
	diags := lint.RunAnalyzers(pkgs, lint.DefaultAnalyzers())
	got := map[string]int{}
	for _, d := range diags {
		got[d.Analyzer]++
	}
	for _, a := range []string{"corestep", "effectcomplete", "shellsafe"} {
		if got[a] == 0 {
			t.Errorf("analyzer %s reported nothing on the seeded-bad-edit fixtures; the gate is dead", a)
		}
	}
	// The multicast fixtures must fire their own analyzers: a direct mc
	// transition trips corestep and the variant-dropping effect switch trips
	// effectcomplete — the mcast core is governed like the others.
	mcast := map[string]bool{}
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "badmcast") {
			mcast[d.Analyzer] = true
		}
	}
	for _, a := range []string{"corestep", "effectcomplete"} {
		if !mcast[a] {
			t.Errorf("analyzer %s reported nothing on the badmcast fixtures; the mcast core is unguarded", a)
		}
	}
	for _, d := range diags {
		switch d.Analyzer {
		case "corestep", "effectcomplete", "shellsafe":
		default:
			t.Errorf("fixture tripped an unrelated analyzer: %s", d)
		}
	}
}
