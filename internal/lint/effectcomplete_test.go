package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestEffectcomplete(t *testing.T) {
	cfg := lint.EffectcompleteConfig{
		Unions: []string{"linttest/src/effectcomplete/core.Effect"},
		Require: map[string][]string{
			"linttest/src/effectcomplete/good":  {"linttest/src/effectcomplete/core.Effect"},
			"linttest/src/effectcomplete/empty": {"linttest/src/effectcomplete/core.Effect"},
		},
	}
	linttest.Run(t, "testdata", lint.Effectcomplete(cfg), "./src/effectcomplete/...")
}
