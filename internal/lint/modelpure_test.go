package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestModelpure(t *testing.T) {
	cfg := lint.ModelpureConfig{
		PurePkgs:             []string{"linttest/src/modelpure"},
		AllowTimeFiles:       []string{"src/modelpure/report.go"},
		GlobalRandEverywhere: true,
	}
	linttest.Run(t, "testdata", lint.Modelpure(cfg), "./src/modelpure", "./src/modelpurext")
}
