package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShellsafeConfig scopes the shellsafe analyzer: which functions are the
// macro-step seam, which types are core state, and where the cores live.
type ShellsafeConfig struct {
	// CorePkgPrefix exempts the pure cores themselves (they contain no
	// goroutines or channels by construction — modelpure enforces that).
	CorePkgPrefix string
	// StepFuncs lists the fully qualified names of the macro-step entry
	// points, as (*types.Func).FullName() renders package functions:
	// "path.Func". Calling one from inside a goroutine launched by a shell
	// breaks run-to-completion.
	StepFuncs []string
	// StateTypes lists qualified core state types ("path.Name"). A
	// goroutine literal whose body mentions a value of such a type (or of a
	// shell struct directly embedding one) captures core state into a
	// concurrent context.
	StateTypes []string
}

// DefaultShellsafeConfig returns the shellsafe configuration for this
// repository: the two Step entry points plus tocore.Drain, and the three
// core node types together with the Filter seam.
func DefaultShellsafeConfig() ShellsafeConfig {
	return ShellsafeConfig{
		CorePkgPrefix: "repro/internal/protocol/",
		StepFuncs: []string{
			"repro/internal/protocol/dvscore.Step",
			"repro/internal/protocol/tocore.Step",
			"repro/internal/protocol/tocore.Drain",
			"repro/internal/protocol/mcastcore.Step",
		},
		StateTypes: []string{
			"repro/internal/protocol/dvscore.Node",
			"repro/internal/protocol/dvscore.Filter",
			"repro/internal/protocol/tocore.Node",
			"repro/internal/protocol/staticcore.Node",
			"repro/internal/protocol/mcastcore.Node",
		},
	}
}

// Shellsafe returns the shellsafe analyzer, which enforces the
// run-to-completion discipline around the macro-step seam:
//
//   - no goroutine may call a Step function: macro-steps are serialized on
//     the shell's event loop, and a concurrent Step races the automaton;
//   - no goroutine literal may capture core state (a value whose type is a
//     configured state type, or a shell struct directly containing one):
//     even read-only concurrent access observes half-applied macro-steps;
//   - in a package that calls Step, every channel send must sit in a select
//     with an escape hatch (a default clause or a receive case): a bare
//     blocking send on the event loop wedges the macro-step pump.
//
// Escape: //lint:shellsafe <reason>.
func Shellsafe(cfg ShellsafeConfig) *Analyzer {
	stepFuncs := make(map[string]bool, len(cfg.StepFuncs))
	for _, name := range cfg.StepFuncs {
		stepFuncs[name] = true
	}
	stateTypes := make(map[string]bool, len(cfg.StateTypes))
	for _, name := range cfg.StateTypes {
		stateTypes[name] = true
	}

	a := &Analyzer{
		Name: "shellsafe",
		Doc:  "run-to-completion around Step: no Step or core state in goroutines, no blocking sends on the loop (escape: //lint:shellsafe)",
	}
	a.Run = func(pass *Pass) {
		if strings.HasPrefix(pass.Path, cfg.CorePkgPrefix) {
			return
		}
		decls := funcDecls(pass.Package)
		callsStep := false
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						checkGoStmt(pass, g, stepFuncs, stateTypes, decls)
						return false // the goroutine's own body is handled there
					}
					if call, ok := n.(*ast.CallExpr); ok && isStepCall(pass, call, stepFuncs) {
						callsStep = true
					}
					return true
				})
			}
		}
		if callsStep {
			checkBlockingSends(pass)
		}
	}
	return a
}

// isStepCall reports whether call invokes one of the configured macro-step
// entry points.
func isStepCall(pass *Pass, call *ast.CallExpr, stepFuncs map[string]bool) bool {
	fn, ok := callee(pass.Info, call).(*types.Func)
	return ok && stepFuncs[fn.FullName()]
}

// touchesState reports whether t is a configured core state type, or a
// named struct directly containing one (one level deep: the shell layer
// structs hold their core in a field).
func touchesState(t types.Type, stateTypes map[string]bool) bool {
	if stateTypes[stateTypeName(t)] {
		return true
	}
	u := types.Unalias(t)
	if ptr, ok := u.(*types.Pointer); ok {
		u = types.Unalias(ptr.Elem())
	}
	st, ok := u.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if stateTypes[stateTypeName(st.Field(i).Type())] {
			return true
		}
	}
	return false
}

// checkGoStmt walks the body launched by one go statement — the literal's
// body, or the static callee's declaration and everything reachable from it
// — for Step calls and core state captures. At most one report per go
// statement: the fix is the same either way (move the work onto the loop).
func checkGoStmt(pass *Pass, g *ast.GoStmt, stepFuncs, stateTypes map[string]bool, decls map[types.Object]*ast.FuncDecl) {
	var bodies []*ast.BlockStmt
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		bodies = append(bodies, lit.Body)
	} else if fn := callee(pass.Info, g.Call); fn != nil {
		for obj := range reachable(pass.Package, decls, []types.Object{fn}) {
			if fd := decls[obj]; fd != nil && fd.Body != nil {
				bodies = append(bodies, fd.Body)
			}
		}
	}
	// The arguments of the go call itself also escape to the goroutine.
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && touchesState(tv.Type, stateTypes) {
			if !pass.Escaped(g.Pos(), "shellsafe") {
				pass.Reportf(g.Pos(),
					"goroutine receives core state (%s): macro-steps are only atomic on the event loop — pass a clone or annotate //lint:shellsafe <reason>",
					stateDesc(tv.Type, stateTypes))
			}
			return
		}
	}
	for _, body := range bodies {
		var done bool
		ast.Inspect(body, func(n ast.Node) bool {
			if done {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isStepCall(pass, call, stepFuncs) {
				if !pass.Escaped(g.Pos(), "shellsafe") {
					pass.Reportf(g.Pos(),
						"goroutine calls a core Step function: macro-steps must be serialized on the run-to-completion loop — dispatch onto the loop or annotate //lint:shellsafe <reason>")
				}
				done = true
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				if tv, ok := pass.Info.Types[e]; ok && touchesState(tv.Type, stateTypes) {
					if !pass.Escaped(g.Pos(), "shellsafe") {
						pass.Reportf(g.Pos(),
							"goroutine captures core state (%s): macro-steps are only atomic on the event loop — pass a clone or annotate //lint:shellsafe <reason>",
							stateDesc(tv.Type, stateTypes))
					}
					done = true
					return false
				}
			}
			return true
		})
		if done {
			return
		}
	}
}

// stateDesc names the core state type t touches, for the report message.
func stateDesc(t types.Type, stateTypes map[string]bool) string {
	if name := stateTypeName(t); stateTypes[name] {
		return name
	}
	u := types.Unalias(t)
	if ptr, ok := u.(*types.Pointer); ok {
		u = types.Unalias(ptr.Elem())
	}
	if st, ok := u.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if name := stateTypeName(st.Field(i).Type()); stateTypes[name] {
				return "struct holding " + name
			}
		}
	}
	return t.String()
}

// checkBlockingSends flags channel sends outside a guarded select in a
// package that drives a core: a bare send can block the event loop holding
// the macro-step, wedging the whole node.
func checkBlockingSends(pass *Pass) {
	for _, f := range pass.Files {
		// guarded holds sends that are select comm clauses with an escape
		// hatch: a default clause or at least one receive case to fall
		// through to.
		guarded := make(map[*ast.SendStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasEscape := false
			for _, clause := range sel.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil { // default:
					hasEscape = true
				} else if _, isSend := cc.Comm.(*ast.SendStmt); !isSend {
					hasEscape = true // receive case
				}
			}
			if !hasEscape {
				return true
			}
			for _, clause := range sel.Body.List {
				if send, ok := clause.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
					guarded[send] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok || guarded[send] {
				return true
			}
			if pass.Escaped(send.Pos(), "shellsafe") {
				return true
			}
			pass.Reportf(send.Pos(),
				"blocking channel send in a package that drives a core Step loop: a full channel wedges the macro-step pump — use a select with default/receive or annotate //lint:shellsafe <reason>")
			return true
		})
	}
}
