package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCorestep(t *testing.T) {
	cfg := lint.CorestepConfig{
		CorePkgPrefix: "linttest/src/corestep/core",
		StateTypes: map[string][]string{
			"linttest/src/corestep/core.Node":   {"P", "Info"},
			"linttest/src/corestep/core.Filter": {"P", "Info"},
		},
		AliasAccessors: []string{"Info"},
		FilterIfaces:   []string{"linttest/src/corestep/core.Filter"},
	}
	linttest.Run(t, "testdata", lint.Corestep(cfg), "./src/corestep/...")
}
