// Package linttest is a golden-case harness for the dvslint analyzers,
// modeled on golang.org/x/tools' analysistest but self-contained. Test
// packages live under a testdata directory that is its own Go module (so
// the main build never sees them), and expectations are written as
//
//	code under test // want "regexp" "second regexp"
//
// comments: every diagnostic reported on that line must match one of the
// regexps, every regexp must be matched by exactly one diagnostic, and any
// diagnostic on a line without a matching expectation fails the test.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one unmatched want-regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Run loads the given patterns (relative to dir, typically "testdata") and
// checks the analyzer's diagnostics against the // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %v", patterns)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(c)
					if err != nil {
						t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, w := range ws {
						w.file = pos.Filename
						w.line = pos.Line
						wants = append(wants, w)
					}
				}
			}
		}
	}

	diags := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: no diagnostic matched %s", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the quoted regexps from a // want comment. The marker
// may also be embedded later in a comment ("//lint:x // want ..."), so that
// expectations can sit on the same line as a directive under test.
func parseWants(c *ast.Comment) ([]*expectation, error) {
	var text string
	if t, ok := strings.CutPrefix(c.Text, "// want "); ok {
		text = t
	} else if i := strings.Index(c.Text, "// want "); i >= 0 {
		text = c.Text[i+len("// want "):]
	} else {
		return nil, nil
	}
	var ws []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("malformed want comment near %q", rest)
		}
		q, err := nextQuoted(rest)
		if err != nil {
			return nil, err
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", q, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("compiling want regexp %s: %v", q, err)
		}
		ws = append(ws, &expectation{re: re, raw: q})
		rest = strings.TrimSpace(rest[len(q):])
	}
	return ws, nil
}

// nextQuoted returns the leading quoted string literal of s.
func nextQuoted(s string) (string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated quote in want comment: %s", s)
}
