package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSharedmut(t *testing.T) {
	linttest.Run(t, "testdata", lint.Sharedmut(), "./src/sharedmut")
}
