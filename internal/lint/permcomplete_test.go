package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestPermcomplete(t *testing.T) {
	linttest.Run(t, "testdata", lint.Permcomplete(), "./src/permcomplete")
}
