package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EffectcompleteConfig scopes the effectcomplete analyzer: the closed
// event/effect unions of the protocol cores, and the shell packages that
// must consume them exhaustively.
type EffectcompleteConfig struct {
	// Unions lists the qualified names ("path.Name") of the closed sum
	// types: sealed interfaces whose variants all live in the defining
	// package. Every type switch over one of them, anywhere in the tree,
	// must handle every variant explicitly — a default case does not count,
	// because it is exactly what silently swallows a newly added Effect.
	Unions []string
	// Require maps a package import path to the unions it must consume: at
	// least one complete type switch over each listed union must appear in
	// the package. This catches the deletion failure mode — a shell that
	// stops switching over Effects entirely would otherwise go quiet.
	Require map[string][]string
}

// DefaultEffectcompleteConfig returns the effectcomplete configuration for
// this repository: the four core unions, required in the two shells and in
// the conformance recorder/replayer.
func DefaultEffectcompleteConfig() EffectcompleteConfig {
	return EffectcompleteConfig{
		Unions: []string{
			"repro/internal/protocol/dvscore.Event",
			"repro/internal/protocol/dvscore.Effect",
			"repro/internal/protocol/tocore.Event",
			"repro/internal/protocol/tocore.Effect",
			"repro/internal/protocol/mcastcore.Event",
			"repro/internal/protocol/mcastcore.Effect",
		},
		Require: map[string][]string{
			// dvsg consumes the DVS core's effects; tob the TO core's; the
			// multicast coordinator the mcast core's.
			"repro/internal/dvsg":  {"repro/internal/protocol/dvscore.Effect"},
			"repro/internal/tob":   {"repro/internal/protocol/tocore.Effect"},
			"repro/internal/mcast": {"repro/internal/protocol/mcastcore.Effect"},
			// The conformance layer clones and replays all six unions.
			"repro/internal/conform": {
				"repro/internal/protocol/dvscore.Event",
				"repro/internal/protocol/dvscore.Effect",
				"repro/internal/protocol/tocore.Event",
				"repro/internal/protocol/tocore.Effect",
				"repro/internal/protocol/mcastcore.Event",
				"repro/internal/protocol/mcastcore.Effect",
			},
		},
	}
}

// Effectcomplete returns the effectcomplete analyzer: every type switch
// over a configured core union must name every variant of the union in its
// case clauses. Variants are enumerated from the union's defining package
// (every exported non-interface type in scope that implements the union),
// so adding a new Effect there immediately flags every consuming switch in
// the tree. A `default:` clause does not satisfy the check — silently
// dropping an unknown Effect is the failure mode this analyzer exists to
// prevent. Escape: //lint:effectcomplete <reason>.
func Effectcomplete(cfg EffectcompleteConfig) *Analyzer {
	a := &Analyzer{
		Name: "effectcomplete",
		Doc:  "type switches over core event/effect unions handle every variant (escape: //lint:effectcomplete)",
	}
	a.Run = func(pass *Pass) {
		// Resolve the unions visible from this package, with their variant
		// sets. Unions whose package this package does not import cannot be
		// switched over here, so skipping them is sound.
		type union struct {
			qname    string
			iface    *types.Interface
			variants map[string]bool // variant type name -> still missing
		}
		var unions []union
		for _, qname := range cfg.Unions {
			it, _ := lookupInterface(pass.Pkg, qname)
			if it == nil {
				continue
			}
			unions = append(unions, union{qname: qname, iface: it, variants: unionVariants(pass.Pkg, qname, it)})
		}
		if len(unions) == 0 {
			return
		}

		// complete[qname] = true once this package contains at least one
		// exhaustive switch over the union (for the Require rule).
		complete := make(map[string]bool)

		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				tag := typeSwitchTag(pass, ts)
				if tag == nil {
					return true
				}
				tname := stateTypeName(tag)
				for _, u := range unions {
					if tname != u.qname {
						continue
					}
					missing := coverUnion(pass, ts, u.variants)
					if len(missing) == 0 {
						complete[u.qname] = true
						continue
					}
					if pass.Escaped(ts.Pos(), "effectcomplete") {
						continue
					}
					pass.Reportf(ts.Pos(),
						"type switch over %s does not handle %s: a shell that drops effects desynchronizes from the core — handle them or annotate //lint:effectcomplete <reason>",
						u.qname, strings.Join(missing, ", "))
				}
				return true
			})
		}

		for _, qname := range cfg.Require[pass.Path] {
			if complete[qname] {
				continue
			}
			pos := pass.Files[0].Package
			if pass.Escaped(pos, "effectcomplete") {
				continue
			}
			pass.Reportf(pos,
				"package %s must contain a complete type switch over %s (it consumes the union) but has none",
				pass.Path, qname)
		}
	}
	return a
}

// unionVariants enumerates the variants of a sealed union: the named
// non-interface types declared in the union's own package whose value or
// pointer form implements it.
func unionVariants(pkg *types.Package, qname string, iface *types.Interface) map[string]bool {
	path := qname[:strings.LastIndex(qname, ".")]
	dep := findImport(pkg, path, make(map[string]bool))
	if dep == nil {
		return nil
	}
	variants := make(map[string]bool)
	scope := dep.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			variants[path+"."+name] = true
		}
	}
	return variants
}

// typeSwitchTag returns the static type of the expression a type switch
// switches over, or nil.
func typeSwitchTag(pass *Pass, ts *ast.TypeSwitchStmt) types.Type {
	var x ast.Expr
	switch assign := ts.Assign.(type) {
	case *ast.AssignStmt: // switch v := e.(type)
		if len(assign.Rhs) != 1 {
			return nil
		}
		ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	case *ast.ExprStmt: // switch e.(type)
		ta, ok := assign.X.(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	default:
		return nil
	}
	tv, ok := pass.Info.Types[x]
	if !ok {
		return nil
	}
	return tv.Type
}

// coverUnion returns the sorted variant names of the union NOT named by any
// case clause of the switch. A default clause covers nothing.
func coverUnion(pass *Pass, ts *ast.TypeSwitchStmt, variants map[string]bool) []string {
	missing := make(map[string]bool, len(variants))
	for v := range variants {
		missing[v] = true
	}
	for _, stmt := range ts.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, ce := range cc.List {
			tv, ok := pass.Info.Types[ce]
			if !ok {
				continue
			}
			if name := stateTypeName(tv.Type); name != "" {
				delete(missing, name)
			}
		}
	}
	out := make([]string, 0, len(missing))
	for v := range missing {
		// Report bare variant names: the union is already named in the message.
		out = append(out, v[strings.LastIndex(v, ".")+1:])
	}
	sort.Strings(out)
	return out
}
