package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFporder(t *testing.T) {
	linttest.Run(t, "testdata", lint.Fporder(), "./src/fporder")
}
