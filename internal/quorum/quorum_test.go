package quorum

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func TestMajority(t *testing.T) {
	u := types.RangeProcSet(5)
	m := Majority(u)
	if m.IsQuorum(types.NewProcSet(0, 1)) {
		t.Error("2 of 5 accepted")
	}
	if !m.IsQuorum(types.NewProcSet(0, 1, 2)) {
		t.Error("3 of 5 rejected")
	}
	// Members outside the universe do not count.
	if m.IsQuorum(types.NewProcSet(7, 8, 9)) {
		t.Error("foreign members counted")
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
	if !m.Universe().Equal(u) {
		t.Error("universe accessor wrong")
	}
}

func TestMajorityEvenUniverse(t *testing.T) {
	m := Majority(types.RangeProcSet(4))
	if m.IsQuorum(types.NewProcSet(0, 1)) {
		t.Error("half is not a strict majority")
	}
	if !m.IsQuorum(types.NewProcSet(0, 1, 2)) {
		t.Error("3 of 4 rejected")
	}
}

func TestMajorityIntersectionProperty(t *testing.T) {
	// Any two quorums of a majority system intersect.
	u := types.RangeProcSet(7)
	m := Majority(u)
	rng := rand.New(rand.NewSource(1))
	procs := u.Sorted()
	quorums := make([]types.ProcSet, 0, 50)
	for len(quorums) < 50 {
		s := types.RandomSubset(rng, procs)
		if m.IsQuorum(s) {
			quorums = append(quorums, s)
		}
	}
	for i := range quorums {
		for j := i + 1; j < len(quorums); j++ {
			if !quorums[i].Intersects(quorums[j]) {
				t.Fatalf("quorums %s and %s disjoint", quorums[i], quorums[j])
			}
		}
	}
}

func TestWeighted(t *testing.T) {
	w := Weighted(map[types.ProcID]int{0: 3, 1: 1, 2: 1, 3: 1})
	if !w.IsQuorum(types.NewProcSet(0, 1)) {
		t.Error("weight 4 of 6 rejected")
	}
	if w.IsQuorum(types.NewProcSet(1, 2, 3)) {
		t.Error("weight 3 of 6 accepted (not strict)")
	}
	if w.IsQuorum(types.NewProcSet(9)) {
		t.Error("zero-weight member accepted")
	}
	// Non-positive weights are dropped.
	w2 := Weighted(map[types.ProcID]int{0: 1, 1: -5})
	if !w2.IsQuorum(types.NewProcSet(0)) {
		t.Error("negative weight perturbed the total")
	}
}

func TestExplicit(t *testing.T) {
	qs, err := Explicit("grid", []types.ProcSet{
		types.NewProcSet(0, 1),
		types.NewProcSet(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !qs.IsQuorum(types.NewProcSet(0, 1, 5)) {
		t.Error("superset of a quorum rejected")
	}
	if qs.IsQuorum(types.NewProcSet(0, 2)) {
		t.Error("non-quorum accepted")
	}
	if qs.Name() != "grid" {
		t.Error("name wrong")
	}
}

func TestExplicitRejectsNonIntersecting(t *testing.T) {
	_, err := Explicit("bad", []types.ProcSet{
		types.NewProcSet(0, 1),
		types.NewProcSet(2, 3),
	})
	if err == nil {
		t.Fatal("ill-formed quorum system accepted")
	}
}
