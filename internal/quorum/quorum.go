// Package quorum provides static quorum systems: the pre-defined primary
// definitions (Section 1 of the paper) that dynamic voting replaces. They
// back the static baseline (internal/staticp) and the availability
// experiments.
package quorum

import (
	"fmt"

	"repro/internal/types"
)

// System decides whether a set of processes constitutes a quorum. Any two
// quorums of a well-formed system intersect.
type System interface {
	// IsQuorum reports whether s contains a quorum.
	IsQuorum(s types.ProcSet) bool
	// Name describes the system.
	Name() string
}

// MajoritySystem is the simple majority quorum system over a fixed universe.
type MajoritySystem struct {
	universe types.ProcSet
}

var _ System = (*MajoritySystem)(nil)

// Majority builds the strict-majority system over the universe.
func Majority(universe types.ProcSet) *MajoritySystem {
	return &MajoritySystem{universe: universe.Clone()}
}

// IsQuorum implements System: |s ∩ U| > |U|/2.
func (m *MajoritySystem) IsQuorum(s types.ProcSet) bool {
	return s.MajorityOf(m.universe)
}

// Name implements System.
func (m *MajoritySystem) Name() string {
	return fmt.Sprintf("majority(%s)", m.universe)
}

// Universe returns the fixed universe.
func (m *MajoritySystem) Universe() types.ProcSet { return m.universe.Clone() }

// WeightedSystem is a weighted-majority quorum system: a set is a quorum if
// its members' weights sum to strictly more than half the total weight.
type WeightedSystem struct {
	weights map[types.ProcID]int
	total   int
}

var _ System = (*WeightedSystem)(nil)

// Weighted builds a weighted-majority system. Processes absent from the map
// have weight zero.
func Weighted(weights map[types.ProcID]int) *WeightedSystem {
	w := &WeightedSystem{weights: make(map[types.ProcID]int, len(weights))}
	for p, wt := range weights {
		if wt > 0 {
			w.weights[p] = wt
			w.total += wt
		}
	}
	return w
}

// IsQuorum implements System.
func (w *WeightedSystem) IsQuorum(s types.ProcSet) bool {
	sum := 0
	for p := range s {
		sum += w.weights[p]
	}
	return 2*sum > w.total
}

// Name implements System.
func (w *WeightedSystem) Name() string { return "weighted-majority" }

// ExplicitSystem is a quorum system given by an explicit list of minimal
// quorums (e.g. a grid or tree construction computed elsewhere).
type ExplicitSystem struct {
	quorums []types.ProcSet
	name    string
}

var _ System = (*ExplicitSystem)(nil)

// Explicit builds a system from its minimal quorums. It returns an error if
// some pair of quorums does not intersect (an ill-formed system would break
// the coherence arguments quorums exist to support).
func Explicit(name string, quorums []types.ProcSet) (*ExplicitSystem, error) {
	for i := range quorums {
		for j := i + 1; j < len(quorums); j++ {
			if !quorums[i].Intersects(quorums[j]) {
				return nil, fmt.Errorf("quorums %s and %s do not intersect", quorums[i], quorums[j])
			}
		}
	}
	cp := make([]types.ProcSet, len(quorums))
	for i, q := range quorums {
		cp[i] = q.Clone()
	}
	return &ExplicitSystem{quorums: cp, name: name}, nil
}

// IsQuorum implements System: s is a quorum if it contains some minimal
// quorum.
func (e *ExplicitSystem) IsQuorum(s types.ProcSet) bool {
	for _, q := range e.quorums {
		if q.Subset(s) {
			return true
		}
	}
	return false
}

// Name implements System.
func (e *ExplicitSystem) Name() string { return e.name }
