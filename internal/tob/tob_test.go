package tob

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dvsg"
	netfab "repro/internal/net"
	"repro/internal/types"
	"repro/internal/vsg"
)

type stack struct {
	fab   *netfab.Fabric
	nodes []*vsg.Node
	apps  []*Layer
}

func newStack(t *testing.T, n int, register bool) *stack {
	t.Helper()
	universe := types.RangeProcSet(n)
	v0 := types.InitialView(universe)
	s := &stack{fab: netfab.NewFabric(universe, netfab.Config{})}
	for i := 0; i < n; i++ {
		id := types.ProcID(i)
		node := vsg.NewNode(vsg.Config{Self: id, Universe: universe, Initial: v0, Transport: s.fab})
		app := New(id, v0, register, node.Stopped())
		layer := dvsg.New(core.NewNode(id, v0, true), app, true)
		layer.Bind(node)
		app.Bind(layer)
		node.SetHandler(layer)
		s.nodes = append(s.nodes, node)
		s.apps = append(s.apps, app)
	}
	for _, nd := range s.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range s.nodes {
			nd.Stop()
		}
	})
	return s
}

func (s *stack) broadcast(i int, a string) {
	s.nodes[i].Do(func() { s.apps[i].Broadcast(a) })
}

func recvN(t *testing.T, app *Layer, n int, timeout time.Duration) []Delivery {
	t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d := <-app.Deliveries():
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timeout: %d of %d deliveries", len(out), n)
		}
	}
	return out
}

func TestBroadcastDeliverAll(t *testing.T) {
	s := newStack(t, 3, true)
	for k := 0; k < 6; k++ {
		s.broadcast(k%3, fmt.Sprintf("m%d", k))
	}
	var seqs [][]Delivery
	for i := 0; i < 3; i++ {
		seqs = append(seqs, recvN(t, s.apps[i], 6, 5*time.Second))
	}
	for i := 1; i < 3; i++ {
		for k := range seqs[0] {
			if seqs[i][k] != seqs[0][k] {
				t.Fatalf("node %d diverges at %d: %v vs %v", i, k, seqs[i][k], seqs[0][k])
			}
		}
	}
}

func TestPerOriginFIFO(t *testing.T) {
	s := newStack(t, 3, true)
	for k := 0; k < 5; k++ {
		s.broadcast(1, fmt.Sprintf("f%d", k))
	}
	got := recvN(t, s.apps[0], 5, 5*time.Second)
	for k, d := range got {
		if d.Origin != 1 || d.Payload != fmt.Sprintf("f%d", k) {
			t.Fatalf("delivery %d = %+v", k, d)
		}
	}
}

func TestViewEventsReportEstablishment(t *testing.T) {
	s := newStack(t, 3, true)
	s.fab.Partition([]types.ProcID{0, 1})
	deadline := time.After(3 * time.Second)
	for {
		select {
		case e := <-s.apps[0].Views():
			if e.View.Members.Len() == 2 && e.Established {
				return
			}
		case <-deadline:
			t.Fatal("no established view event for the primary {0,1}")
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := newStack(t, 3, true)
	s.broadcast(0, "x")
	recvN(t, s.apps[0], 1, 5*time.Second)
	ch := make(chan Stats, 1)
	s.nodes[0].Do(func() { ch <- s.apps[0].Stats() })
	st := <-ch
	if st.Broadcasts != 1 || st.Labeled != 1 || st.Confirmed == 0 || st.Delivered == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegistrationDisabledStillDelivers(t *testing.T) {
	s := newStack(t, 3, false)
	s.fab.Partition([]types.ProcID{0, 1})
	time.Sleep(150 * time.Millisecond)
	s.broadcast(0, "noreg")
	got := recvN(t, s.apps[1], 1, 5*time.Second)
	if got[0].Payload != "noreg" {
		t.Fatalf("delivery = %+v", got[0])
	}
	// Without registration the DVS layer never garbage-collects; the view
	// stays unregistered at the DVS level — this only affects GC, not
	// delivery.
	ch := make(chan Stats, 1)
	s.nodes[0].Do(func() { ch <- s.apps[0].Stats() })
	if st := <-ch; st.Established != 0 {
		t.Errorf("established counter should stay 0 with registration disabled: %+v", st)
	}
}

func TestBufferedBroadcastBeforeView(t *testing.T) {
	// A process outside v0 buffers broadcasts in delay until it has a view.
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	fab := netfab.NewFabric(universe, netfab.Config{})
	var nodes []*vsg.Node
	var apps []*Layer
	for i := 0; i < 3; i++ {
		id := types.ProcID(i)
		node := vsg.NewNode(vsg.Config{Self: id, Universe: universe, Initial: v0, Transport: fab})
		app := New(id, v0, true, node.Stopped())
		layer := dvsg.New(core.NewNode(id, v0, v0.Contains(id)), app, true)
		layer.Bind(node)
		app.Bind(layer)
		node.SetHandler(layer)
		nodes = append(nodes, node)
		apps = append(apps, app)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	// Process 2 has no view yet; its broadcast sits in delay until the
	// membership admits it.
	nodes[2].Do(func() { apps[2].Broadcast("early") })
	got := recvN(t, apps[0], 1, 5*time.Second)
	if got[0].Payload != "early" || got[0].Origin != 2 {
		t.Fatalf("delivery = %+v", got[0])
	}
}
