// Package tob is the runtime realization of the totally-ordered broadcast
// application of Section 6: a thin shell that drives the shared protocol
// core (internal/protocol/tocore) — the *verified* DVS-TO-TO automaton,
// exactly the code checked against the TO specification — on top of the
// dynamic-view layer (internal/dvsg).
//
// The shell contains no protocol state transitions. It translates DVS
// upcalls and client broadcasts into tocore Events, invokes tocore.Step
// (one atomic macro-step: apply the event, then drain the enabled
// locally-controlled actions in the core's fixed order), and applies the
// emitted Effects: messages go down through DVS, ordered deliveries and
// view events go up to the application channels.
//
// Steps run to completion: sending through DVS can synchronously re-enter
// the shell (a leader's own submission is ordered, delivered, and acked
// inline by the layers below), so re-entrant events are queued and
// processed after the current step's effects have all been applied. Every
// event therefore observes a quiescent core, which is what makes the
// recorded (event, effects) logs exactly replayable by the conformance
// checker (internal/conform).
package tob

import (
	"repro/internal/dvsg"
	"repro/internal/protocol/tocore"
	"repro/internal/toimpl"
	"repro/internal/types"
)

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	Payload string
	Origin  types.ProcID
}

// ViewEvent reports a primary view becoming current (and later established)
// at this node; used by experiments and applications that track membership.
type ViewEvent struct {
	View        types.View
	Established bool
}

// Observer receives every macro-step of the core, in execution order: the
// input event and the effects it emitted. The conformance recorder is an
// Observer. Called from the event loop; the effects slice must not be
// mutated. Events the core rejects (unexpected message types) mutate no
// state and are not observed.
type Observer func(ev tocore.Event, effects []tocore.Effect)

// DeliverHook intercepts each totally-ordered delivery before it reaches
// the application stream, and returns the deliveries to hand up in its
// place: nil consumes the delivery, a singleton passes it (possibly
// rewritten) through, and a longer slice injects additional deliveries at
// this point of the order. The multicast coordinator uses this seam to
// strip its control payloads out of the application stream and to splice
// finalized cross-group deliveries in at deterministic points. The hook
// runs inline on the event loop, inside the macro-step's effect
// application, so whatever it returns inherits the total order's
// determinism — it must itself be a deterministic function of the
// delivery sequence it has seen.
type DeliverHook func(d Delivery) []Delivery

// Stats are cumulative per-node tob counters. The frames-vs-payloads pairs
// (BatchesOut/PayloadsOut, BatchesIn/PayloadsIn) make the effect of shell
// batching observable: PayloadsOut counts individual label/summary messages
// the core emitted, BatchesOut counts the DVS sends that carried them.
type Stats struct {
	Broadcasts     uint64
	Labeled        uint64
	Confirmed      uint64
	Delivered      uint64
	Established    uint64
	DroppedUp      uint64 // deliveries dropped because the application lagged
	DroppedViews   uint64 // view events dropped because the application lagged
	LabelsSent     uint64 // labeled client messages sent through DVS
	StateExchanges uint64 // recovery summaries sent (one per view needing state exchange)
	BatchesOut     uint64 // DVS sends (frames): batches plus unbatched singletons
	PayloadsOut    uint64 // individual messages carried by those sends
	BatchesIn      uint64 // received DVS frames that were batches
	PayloadsIn     uint64 // individual messages expanded from received batches
	FlushDiscards  uint64 // pending payloads discarded at a view change
}

// maxBatch bounds the number of label/summary messages coalesced into one
// DVS send. Large enough to amortize per-frame cost across a loaded queue,
// small enough to keep individual frames (and the head-of-line latency they
// impose) bounded.
const maxBatch = 64

// Layer drives a tocore.Node over a dvsg.Layer.
type Layer struct {
	node     *toimpl.Node
	dvs      *dvsg.Layer
	stop     <-chan struct{}
	stats    Stats
	observer Observer
	hook     DeliverHook

	deliveries chan Delivery
	views      chan ViewEvent

	register bool

	// Run-to-completion event queue: events arriving while a step is in
	// flight (synchronous re-entry from the layers below) are deferred until
	// the current step's effects have been applied.
	stepping bool
	queue    []tocore.Event

	// Send batching: FxSend effects accumulate in pending instead of going
	// through DVS one frame per message. A flush is deferred through the
	// event-loop scheduler when possible, so every broadcast already queued
	// behind the current one lands in the same batch; when the scheduler is
	// unavailable the flush happens at the end of the dispatch. Pending
	// messages are discarded (and counted) on a view change: a label popped
	// but unsent stays in the core's content and is recovered by the new
	// view's summary exchange, while sending it late — tagged with the new
	// view at the VS layer — could double-order it at receivers.
	pending        []types.Msg
	flushScheduled bool
	flushing       bool
}

// New builds the layer. register controls whether established views are
// registered with DVS (the paper's REGISTER mechanism; disable for the E6
// ablation). stop aborts blocking hand-offs to the application when the
// node shuts down.
func New(self types.ProcID, initial types.View, register bool, stop <-chan struct{}) *Layer {
	return &Layer{
		node:       toimpl.NewNode(self, initial, initial.Contains(self), false),
		stop:       stop,
		register:   register,
		deliveries: make(chan Delivery, 1<<14),
		views:      make(chan ViewEvent, 1024),
	}
}

var _ dvsg.Handler = (*Layer)(nil)

// Bind attaches the dvsg layer used for sending. It must be called before
// the node starts.
func (l *Layer) Bind(dvs *dvsg.Layer) { l.dvs = dvs }

// SetObserver installs the macro-step observer, replacing any previous one.
// It must be called before the node starts.
func (l *Layer) SetObserver(o Observer) { l.observer = o }

// AddObserver chains o after any already-installed observer, so a recorder,
// a stream spiller, and an online checker can watch the same layer. It must
// be called before the node starts.
func (l *Layer) AddObserver(o Observer) {
	if prev := l.observer; prev != nil {
		l.observer = func(ev tocore.Event, effects []tocore.Effect) {
			prev(ev, effects)
			o(ev, effects)
		}
		return
	}
	l.observer = o
}

// SetDeliverHook installs the delivery interceptor. It must be called
// before the node starts.
func (l *Layer) SetDeliverHook(h DeliverHook) { l.hook = h }

// Deliveries is the application-facing totally ordered stream. Consumers
// must drain it; if it fills, further deliveries are dropped and counted.
func (l *Layer) Deliveries() <-chan Delivery { return l.deliveries }

// Views is the application-facing primary-view stream (best effort: events
// are dropped if the consumer lags).
func (l *Layer) Views() <-chan ViewEvent { return l.views }

// Stats returns a snapshot of the counters. Read from the event loop (via
// Node.Do) or after shutdown.
func (l *Layer) Stats() Stats { return l.stats }

// Node exposes the underlying automaton for inspection by tests and
// experiments (event-loop context only).
func (l *Layer) Node() *toimpl.Node { return l.node }

// Broadcast submits a client payload. It must be called from the event
// loop (via vsg.Node.Do).
func (l *Layer) Broadcast(a string) {
	l.stats.Broadcasts++
	l.dispatch(tocore.EvBroadcast{A: a})
}

// OnDVSNewView implements dvsg.Handler.
func (l *Layer) OnDVSNewView(v types.View) {
	l.dispatch(tocore.EvNewView{View: v})
}

// OnDVSRecv implements dvsg.Handler. Batches are expanded here, before the
// core sees them: one EvRecv per member, in batch order, so the core's event
// stream is identical to an unbatched execution.
func (l *Layer) OnDVSRecv(m types.Msg, from types.ProcID) {
	if b, ok := m.(types.Batch); ok {
		l.stats.BatchesIn++
		l.stats.PayloadsIn += uint64(len(b.Msgs))
		for _, inner := range b.Msgs {
			l.dispatch(tocore.EvRecv{M: inner, From: from})
		}
		return
	}
	l.dispatch(tocore.EvRecv{M: m, From: from})
}

// OnDVSSafe implements dvsg.Handler. A safe indication for a batch means
// every member message is safe, in batch order.
func (l *Layer) OnDVSSafe(m types.Msg, from types.ProcID) {
	if b, ok := m.(types.Batch); ok {
		for _, inner := range b.Msgs {
			l.dispatch(tocore.EvSafe{M: inner, From: from})
		}
		return
	}
	l.dispatch(tocore.EvSafe{M: m, From: from})
}

// dispatch runs one core macro-step for ev, or queues it if a step is
// already in flight, then drains the queue. Queued events are processed in
// arrival order, so the delivery and view streams handed up preserve the
// core's emission order even under synchronous re-entry.
func (l *Layer) dispatch(ev tocore.Event) {
	if l.stepping {
		l.queue = append(l.queue, ev)
		return
	}
	l.stepping = true
	l.step(ev)
	for len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.step(next)
	}
	l.stepping = false
	l.maybeFlush()
}

// maybeFlush arranges for the pending sends to go out: preferably on a later
// event-loop iteration (so adjacent queued events contribute to the same
// batch), synchronously as a fallback.
func (l *Layer) maybeFlush() {
	if len(l.pending) == 0 || l.flushScheduled || l.flushing {
		return
	}
	if l.dvs != nil && l.dvs.Defer(l.flush) {
		l.flushScheduled = true
		return
	}
	l.flush()
}

// flush drains the pending sends through DVS in maxBatch-sized frames.
// Sending can synchronously re-enter the shell (a leader's own labels come
// back ordered inline) and append further pending sends; the loop coalesces
// those too, and the flushing guard stops maybeFlush from recursing.
func (l *Layer) flush() {
	l.flushScheduled = false
	if l.flushing {
		return
	}
	l.flushing = true
	defer func() { l.flushing = false }()
	for len(l.pending) > 0 {
		k := len(l.pending)
		if k > maxBatch {
			k = maxBatch
		}
		var m types.Msg
		if k == 1 {
			m = l.pending[0]
		} else {
			m = types.Batch{Msgs: append([]types.Msg(nil), l.pending[:k]...)}
		}
		l.pending = l.pending[k:]
		if len(l.pending) == 0 {
			l.pending = nil
		}
		l.stats.BatchesOut++
		l.stats.PayloadsOut += uint64(k)
		l.dvs.Send(m)
	}
}

// step performs one atomic macro-step and applies its effects. A rejected
// event (unexpected message type) mutates no state and is dropped, matching
// the previous shell's behavior.
func (l *Layer) step(ev tocore.Event) {
	if _, isView := ev.(tocore.EvNewView); isView && len(l.pending) > 0 {
		// Unsent messages belong to the view that just died. See the pending
		// field comment: discarding is the VS-permitted loss; a late send
		// would leak old-view labels into the new view.
		l.stats.FlushDiscards += uint64(len(l.pending))
		l.pending = nil
	}
	var out tocore.Outbox
	if err := tocore.Step(l.node, ev, l.register, &out); err != nil {
		return
	}
	if l.observer != nil {
		l.observer(ev, out.Effects)
	}
	if nv, ok := ev.(tocore.EvNewView); ok {
		l.pushView(ViewEvent{View: nv.View.Clone()})
	}
	for _, fx := range out.Effects {
		switch fx := fx.(type) {
		case tocore.FxLabel:
			l.stats.Labeled++
		case tocore.FxSend:
			if _, isSummary := fx.M.(toimpl.SummaryMsg); isSummary {
				l.stats.StateExchanges++
			} else {
				l.stats.LabelsSent++
			}
			l.pending = append(l.pending, fx.M)
		case tocore.FxConfirm:
			l.stats.Confirmed++
		case tocore.FxDeliver:
			l.stats.Delivered++
			d := Delivery{Payload: fx.A, Origin: fx.Origin}
			if l.hook != nil {
				for _, hd := range l.hook(d) {
					l.pushDelivery(hd)
				}
			} else {
				l.pushDelivery(d)
			}
		case tocore.FxRegister:
			l.stats.Established++
			l.pushView(ViewEvent{View: fx.View, Established: true})
			l.dvs.Register()
		}
	}
}

func (l *Layer) pushDelivery(d Delivery) {
	select {
	case l.deliveries <- d:
	case <-l.stop:
	default:
		l.stats.DroppedUp++
	}
}

func (l *Layer) pushView(e ViewEvent) {
	select {
	case l.views <- e:
	default:
		// Best effort by contract, but the loss is counted so a lagging
		// consumer shows up in the stats rather than as silent absence.
		l.stats.DroppedViews++
	}
}
