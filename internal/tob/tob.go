// Package tob is the runtime realization of the totally-ordered broadcast
// application of Section 6: it drives the *verified* DVS-TO-TO automaton
// from internal/toimpl — the same code checked against the TO specification
// — on top of the dynamic-view layer (internal/dvsg).
//
// The layer is a pure state machine invoked from the vsg event loop. After
// every upcall it drains the automaton's enabled locally-controlled actions:
// labeling buffered client messages, sending labeled messages and recovery
// summaries through DVS, confirming safe labels, reporting deliveries to the
// application, and registering established views with the DVS service.
package tob

import (
	"repro/internal/dvsg"
	"repro/internal/toimpl"
	"repro/internal/types"
)

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	Payload string
	Origin  types.ProcID
}

// ViewEvent reports a primary view becoming current (and later established)
// at this node; used by experiments and applications that track membership.
type ViewEvent struct {
	View        types.View
	Established bool
}

// Stats are cumulative per-node tob counters.
type Stats struct {
	Broadcasts     uint64
	Labeled        uint64
	Confirmed      uint64
	Delivered      uint64
	Established    uint64
	DroppedUp      uint64 // deliveries dropped because the application lagged
	LabelsSent     uint64 // labeled client messages sent through DVS
	StateExchanges uint64 // recovery summaries sent (one per view needing state exchange)
}

// Layer drives a toimpl.Node over a dvsg.Layer.
type Layer struct {
	node  *toimpl.Node
	dvs   *dvsg.Layer
	stop  <-chan struct{}
	stats Stats

	deliveries chan Delivery
	views      chan ViewEvent

	register bool
}

// New builds the layer. register controls whether established views are
// registered with DVS (the paper's REGISTER mechanism; disable for the E6
// ablation). stop aborts blocking hand-offs to the application when the
// node shuts down.
func New(self types.ProcID, initial types.View, register bool, stop <-chan struct{}) *Layer {
	return &Layer{
		node:       toimpl.NewNode(self, initial, initial.Contains(self), false),
		stop:       stop,
		register:   register,
		deliveries: make(chan Delivery, 1<<14),
		views:      make(chan ViewEvent, 1024),
	}
}

var _ dvsg.Handler = (*Layer)(nil)

// Bind attaches the dvsg layer used for sending. It must be called before
// the node starts.
func (l *Layer) Bind(dvs *dvsg.Layer) { l.dvs = dvs }

// Deliveries is the application-facing totally ordered stream. Consumers
// must drain it; if it fills, further deliveries are dropped and counted.
func (l *Layer) Deliveries() <-chan Delivery { return l.deliveries }

// Views is the application-facing primary-view stream (best effort: events
// are dropped if the consumer lags).
func (l *Layer) Views() <-chan ViewEvent { return l.views }

// Stats returns a snapshot of the counters. Read from the event loop (via
// Node.Do) or after shutdown.
func (l *Layer) Stats() Stats { return l.stats }

// Node exposes the underlying automaton for inspection by tests and
// experiments (event-loop context only).
func (l *Layer) Node() *toimpl.Node { return l.node }

// Broadcast submits a client payload. It must be called from the event
// loop (via vsg.Node.Do).
func (l *Layer) Broadcast(a string) {
	l.stats.Broadcasts++
	l.node.OnBCast(a)
	l.drain()
}

// OnDVSNewView implements dvsg.Handler.
func (l *Layer) OnDVSNewView(v types.View) {
	l.node.OnDVSNewView(v)
	l.pushView(ViewEvent{View: v.Clone()})
	l.drain()
}

// OnDVSRecv implements dvsg.Handler.
func (l *Layer) OnDVSRecv(m types.Msg, from types.ProcID) {
	if err := l.node.OnDVSGpRcv(m, from); err != nil {
		return
	}
	l.drain()
}

// OnDVSSafe implements dvsg.Handler.
func (l *Layer) OnDVSSafe(m types.Msg, from types.ProcID) {
	if err := l.node.OnDVSSafe(m, from); err != nil {
		return
	}
	l.drain()
}

func (l *Layer) drain() {
	for {
		progress := false
		if a, ok := l.node.LabelHead(); ok {
			if err := l.node.PerformLabel(a); err == nil {
				l.stats.Labeled++
				progress = true
			}
		}
		if m, ok := l.node.GpSndSummary(); ok {
			if err := l.node.TakeGpSndSummary(m); err == nil {
				l.stats.StateExchanges++
				l.dvs.Send(m)
				progress = true
			}
		}
		if m, ok := l.node.GpSndLabel(); ok {
			if err := l.node.TakeGpSndLabel(m); err == nil {
				l.stats.LabelsSent++
				l.dvs.Send(m)
				progress = true
			}
		}
		if l.node.ConfirmEnabled() {
			if err := l.node.PerformConfirm(); err == nil {
				l.stats.Confirmed++
				progress = true
			}
		}
		if a, origin, ok := l.node.BRcvNext(); ok {
			if err := l.node.PerformBRcv(a, origin); err == nil {
				l.stats.Delivered++
				l.pushDelivery(Delivery{Payload: a, Origin: origin})
				progress = true
			}
		}
		if l.register && l.node.RegisterEnabled() {
			if err := l.node.PerformRegister(); err == nil {
				l.stats.Established++
				if cur, ok := l.node.Current(); ok {
					l.pushView(ViewEvent{View: cur.Clone(), Established: true})
				}
				l.dvs.Register()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

func (l *Layer) pushDelivery(d Delivery) {
	select {
	case l.deliveries <- d:
	case <-l.stop:
	default:
		l.stats.DroppedUp++
	}
}

func (l *Layer) pushView(e ViewEvent) {
	select {
	case l.views <- e:
	default:
	}
}
