package dvs

import (
	"strconv"
	"testing"
	"time"
)

// TestConformanceClusterReplay is the end-to-end trace-conformance check on
// the in-memory stack: a recording cluster runs through broadcasts,
// partitions and heals; after Close the per-node logs are replayed through
// the protocol cores and must re-derive every effect exactly, and the
// reconstructed final cut must satisfy the paper's invariants.
func TestConformanceClusterReplay(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 7, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 20; i++ {
		cl.Process(i % 5).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)

	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	for i := 20; i < 30; i++ {
		cl.Process(0).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Heal()
	time.Sleep(300 * time.Millisecond)

	cl.Close()
	logs := cl.TraceLogs()
	if len(logs) != 5 {
		t.Fatalf("TraceLogs returned %d logs, want 5", len(logs))
	}
	steps := 0
	for _, lg := range logs {
		steps += len(lg.DVS) + len(lg.TO)
	}
	if steps == 0 {
		t.Fatal("no macro-steps recorded")
	}

	rep := ReplayTrace(logs)
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Logf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("conformance replay failed: %v (%s)", err, rep)
	}
	t.Logf("conformance: %s", rep)
}

// TestConformanceTraceFileRoundTrip checks the record-to-file / replay-from-
// file path the dvsim -record/-replay flags use.
func TestConformanceTraceFileRoundTrip(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 3, Seed: 11, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 10; i++ {
		cl.Process(i % 3).Broadcast("x" + strconv.Itoa(i))
	}
	time.Sleep(150 * time.Millisecond)
	cl.Close()

	path := t.TempDir() + "/trace.gob"
	if err := WriteTrace(path, cl.TraceLogs()); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	logs, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if rep := ReplayTrace(logs); rep.Err() != nil {
		t.Fatalf("replay from file: %v", rep.Err())
	}
}

// TestConformanceStreamedCluster runs the same end-to-end check through the
// chunked on-disk recorder, with the in-memory recorder alongside: the
// streamed replay must reach the same verdict over the same steps, while
// the recorder's buffered window stays bounded.
func TestConformanceStreamedCluster(t *testing.T) {
	dir := t.TempDir()
	const window = 512
	stream, err := NewTraceStream(dir, TraceStreamOptions{WindowSteps: window})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(Config{Processes: 5, Seed: 7, Record: true, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 40; i++ {
		cl.Process(i % 5).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	for i := 40; i < 60; i++ {
		cl.Process(0).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Heal()
	time.Sleep(300 * time.Millisecond)
	cl.Close()
	if err := stream.Close(); err != nil {
		t.Fatalf("sealing stream: %v", err)
	}

	mem := ReplayTrace(cl.TraceLogs())
	rep, err := ReplayTraceStream(dir)
	if err != nil {
		t.Fatalf("streamed replay: %v", err)
	}
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Logf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("streamed conformance replay failed: %v (%s)", err, rep)
	}
	if !rep.Sealed {
		t.Errorf("closed stream not sealed: %s", rep)
	}
	if rep.OK() != mem.OK() {
		t.Errorf("streamed verdict %v, in-memory verdict %v (%v)", rep.OK(), mem.OK(), mem.Err())
	}
	if rep.DVSSteps != mem.DVSSteps || rep.TOSteps != mem.TOSteps {
		t.Errorf("streamed replay covered dvs=%d/to=%d steps, in-memory dvs=%d/to=%d",
			rep.DVSSteps, rep.TOSteps, mem.DVSSteps, mem.TOSteps)
	}
	if peak := stream.PeakWindowSteps(); peak > window {
		t.Errorf("recorder buffered %d steps, window %d", peak, window)
	}
	t.Logf("streamed conformance: %s (peak window %d)", rep, stream.PeakWindowSteps())
}

// TestOnlineCheckerCluster runs the in-process sampled checker on every
// process of a healthy cluster: it must run checks and find nothing.
func TestOnlineCheckerCluster(t *testing.T) {
	cl, err := NewCluster(Config{
		Processes: 3, Seed: 13,
		Online: &OnlineCheckConfig{Window: 64, Every: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 30; i++ {
		cl.Process(i % 3).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(200 * time.Millisecond)
	cl.Close()

	var steps, checks uint64
	for _, p := range cl.Processes() {
		cs := p.CheckStats()
		steps += cs.Steps
		checks += cs.Checks
		if cs.Divergences != 0 || cs.Violations != 0 {
			t.Errorf("process %s online checker flagged a healthy run: %+v", p.ID(), cs)
		}
	}
	if steps == 0 || checks == 0 {
		t.Fatalf("online checker never ran: steps=%d checks=%d", steps, checks)
	}
}

// TestOnlineRequiresDynamic pins what is left of the mode gate: recording
// and streaming now cover the static baseline (the extracted staticcore is
// a replayable core), but the online checker still shadows the dynamic
// cores only.
func TestOnlineRequiresDynamic(t *testing.T) {
	if _, err := NewCluster(Config{Processes: 3, Mode: ModeStatic, Online: &OnlineCheckConfig{}}); err == nil {
		t.Fatal("NewCluster accepted Online with ModeStatic")
	}
}

// TestConformanceStaticClusterReplay is the end-to-end trace-conformance
// check on the static-primary baseline: a recording static-mode cluster
// runs through broadcasts, a partition, and a heal; the replay re-executes
// the DVS-layer records through staticcore and the TO-layer records through
// tocore, and the final cut must satisfy the static suite (primaries are
// quorums of P0, pairwise intersecting, confirmed prefixes consistent).
func TestConformanceStaticClusterReplay(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 7, Mode: ModeStatic, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 20; i++ {
		cl.Process(i % 5).Broadcast("s" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	cl.Heal()
	time.Sleep(300 * time.Millisecond)
	cl.Close()

	logs := cl.TraceLogs()
	if len(logs) != 5 {
		t.Fatalf("TraceLogs returned %d logs, want 5", len(logs))
	}
	steps := 0
	for _, lg := range logs {
		if !lg.Static {
			t.Fatalf("process %s log not marked static", lg.P)
		}
		steps += len(lg.DVS) + len(lg.TO)
	}
	if steps == 0 {
		t.Fatal("no macro-steps recorded")
	}

	rep := ReplayTrace(logs)
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Logf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("static conformance replay failed: %v (%s)", err, rep)
	}
	t.Logf("static conformance: %s", rep)
}

// TestConformanceStaticStreamed runs the static baseline through the
// chunked on-disk recorder and replays the sealed directory cold — the path
// `dvsim -scenario availability -record` takes for its static variant.
func TestConformanceStaticStreamed(t *testing.T) {
	dir := t.TempDir()
	stream, err := NewTraceStream(dir, TraceStreamOptions{WindowSteps: 256})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(Config{Processes: 3, Seed: 11, Mode: ModeStatic, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 30; i++ {
		cl.Process(i % 3).Broadcast("s" + strconv.Itoa(i))
	}
	time.Sleep(200 * time.Millisecond)
	cl.Close()
	if err := stream.Close(); err != nil {
		t.Fatalf("sealing stream: %v", err)
	}

	rep, err := ReplayTraceStream(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sealed {
		t.Fatalf("stream not sealed: %s (truncated: %s)", rep, rep.Truncated)
	}
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Logf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("static streamed replay failed: %v (%s)", err, rep)
	}
	if rep.DVSSteps == 0 || rep.TOSteps == 0 {
		t.Fatalf("static streamed replay re-stepped nothing: %s", rep)
	}
	t.Logf("static streamed conformance: %s", rep)
}
