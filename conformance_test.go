package dvs

import (
	"strconv"
	"testing"
	"time"
)

// TestConformanceClusterReplay is the end-to-end trace-conformance check on
// the in-memory stack: a recording cluster runs through broadcasts,
// partitions and heals; after Close the per-node logs are replayed through
// the protocol cores and must re-derive every effect exactly, and the
// reconstructed final cut must satisfy the paper's invariants.
func TestConformanceClusterReplay(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 7, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 20; i++ {
		cl.Process(i % 5).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)

	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	for i := 20; i < 30; i++ {
		cl.Process(0).Broadcast("m" + strconv.Itoa(i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Heal()
	time.Sleep(300 * time.Millisecond)

	cl.Close()
	logs := cl.TraceLogs()
	if len(logs) != 5 {
		t.Fatalf("TraceLogs returned %d logs, want 5", len(logs))
	}
	steps := 0
	for _, lg := range logs {
		steps += len(lg.DVS) + len(lg.TO)
	}
	if steps == 0 {
		t.Fatal("no macro-steps recorded")
	}

	rep := ReplayTrace(logs)
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Logf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("conformance replay failed: %v (%s)", err, rep)
	}
	t.Logf("conformance: %s", rep)
}

// TestConformanceTraceFileRoundTrip checks the record-to-file / replay-from-
// file path the dvsim -record/-replay flags use.
func TestConformanceTraceFileRoundTrip(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 3, Seed: 11, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 10; i++ {
		cl.Process(i % 3).Broadcast("x" + strconv.Itoa(i))
	}
	time.Sleep(150 * time.Millisecond)
	cl.Close()

	path := t.TempDir() + "/trace.gob"
	if err := WriteTrace(path, cl.TraceLogs()); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	logs, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if rep := ReplayTrace(logs); rep.Err() != nil {
		t.Fatalf("replay from file: %v", rep.Err())
	}
}

// TestRecordRequiresDynamic pins the configuration contract: the replayer
// re-executes the paper's automata, so recording the static baseline is
// rejected up front rather than failing at replay time.
func TestRecordRequiresDynamic(t *testing.T) {
	if _, err := NewCluster(Config{Processes: 3, Mode: ModeStatic, Record: true}); err == nil {
		t.Fatal("NewCluster accepted Record with ModeStatic")
	}
}
