package dvs

import "testing"

// TestDemonstrateFindings reproduces all five documented discrepancies
// (EXPERIMENTS.md §C) through the public API.
func TestDemonstrateFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("witness search")
	}
	found, err := DemonstrateFindings(CheckConfig{Steps: 500, Seeds: 6})
	if err != nil {
		t.Fatalf("after %d findings: %v", len(found), err)
	}
	if len(found) != 5 {
		t.Fatalf("found %d findings, want 5", len(found))
	}
	for i, want := range []string{"F1", "F2", "F3", "F4", "F5"} {
		if found[i].ID != want {
			t.Errorf("finding %d = %s, want %s", i, found[i].ID, want)
		}
		if found[i].Witness == "" {
			t.Errorf("finding %s has no witness", found[i].ID)
		}
	}
}
