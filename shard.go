package dvs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/conform"
	"repro/internal/mcast"
	netfab "repro/internal/net"
	"repro/internal/protocol/mcastcore"
	"repro/internal/shard"
	"repro/internal/types"
)

// GroupID identifies one DVS/TO group of a sharded deployment.
type GroupID = types.GroupID

// McastDelivery is one finalized cross-group multicast delivery: the
// message id, origin, payload, and the merged timestamp that positions it
// identically in every addressed group.
type McastDelivery = mcastcore.Delivered

// McastTraceLog is one process's recorded multicast trace; see
// ShardedCluster.McastLogs and ReplayMcastTrace.
type McastTraceLog = conform.McastLog

// McastConformanceReport is the outcome of replaying multicast traces.
type McastConformanceReport = conform.McastReport

// ReplayMcastTrace re-executes recorded multicast logs through the
// multicast core and checks the multicast safety suite: per-group
// agreement, (timestamp, id) delivery order, no duplicates, and the
// cross-group partial order — any two groups that both deliver two
// multicasts deliver them in the same relative order.
func ReplayMcastTrace(logs []McastTraceLog) *McastConformanceReport {
	return conform.ReplayMcast(logs)
}

// ShardedConformanceReport aggregates the per-group stream replays and the
// multicast replay of one sharded trace directory.
type ShardedConformanceReport = conform.ShardedReport

// ReplayShardedTrace replays a sharded trace directory written by a
// ShardedCluster with StreamDir: every group's chunked stream through the
// stream replayer, plus the multicast logs (when recorded) through the
// multicast safety suite.
func ReplayShardedTrace(dir string) (*ShardedConformanceReport, error) {
	return conform.ReplaySharded(dir)
}

// ShardedConfig configures a ShardedCluster.
type ShardedConfig struct {
	// Processes is the size of the process universe; every process is a
	// member of every group.
	Processes int
	// Groups is the number of independent DVS/TO groups (>= 1).
	Groups int
	// Mode selects dynamic (default) or static primaries, for every group.
	Mode Mode
	// DisableRegistration as in Config.
	DisableRegistration bool
	// Seed and LossRate as in Config; faults are node-level, so a
	// partition or crash affects every group of the affected processes.
	Seed     int64
	LossRate float64
	// Timing as in Config.
	TickInterval   time.Duration
	SuspectTimeout time.Duration
	ProposeRetry   time.Duration
	// RingReplicas is the number of consistent-hash points per group on
	// the submit router (0 = shard.DefaultReplicas).
	RingReplicas int
	// Record enables in-memory trace recording: per-(process, group)
	// protocol logs (TraceLogs) and per-process multicast logs
	// (McastLogs), both harvested after Close.
	Record bool
	// StreamDir, when non-empty, spills every group's macro-steps into a
	// sharded trace directory: one chunked stream per group under
	// group-NN/ subdirectories. Close seals the streams and (with Record)
	// writes the multicast logs alongside; check the directory with
	// ReplayShardedTrace.
	StreamDir string
}

// ShardedCluster runs Processes × Groups protocol stacks over one
// partitionable in-memory network: every process runs one stack per group,
// all multiplexed over its single fabric endpoint by a group tag. Keyed
// client traffic routes to groups by consistent hash; multi-group traffic
// goes through the cross-group atomic multicast.
type ShardedCluster struct {
	cfg      ShardedConfig
	universe types.ProcSet
	groups   []types.GroupID
	initial  types.View
	fabric   *netfab.Fabric
	ring     *shard.Ring
	procs    map[ProcID]*ShardedProcess
	streams  map[types.GroupID]*TraceStream
	close    sync.Once
	closeErr error
}

// ShardedProcess is the application-facing handle of one process of a
// sharded cluster: its per-group stacks, its group multiplexer, and its
// multicast coordinator.
type ShardedProcess struct {
	id     ProcID
	mux    *netfab.GroupMux
	stacks map[types.GroupID]*stack
	ring   *shard.Ring
	mc     *mcast.Coordinator
	mrec   *conform.McastRecorder // nil unless Record
}

// NewShardedCluster builds and starts a sharded cluster.
func NewShardedCluster(cfg ShardedConfig) (*ShardedCluster, error) {
	if cfg.Processes <= 0 {
		return nil, errors.New("dvs: ShardedConfig.Processes must be positive")
	}
	if cfg.Groups <= 0 {
		return nil, errors.New("dvs: ShardedConfig.Groups must be positive")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDynamic
	}
	universe := types.RangeProcSet(cfg.Processes)
	groups := types.RangeGroups(cfg.Groups)
	initial := types.InitialView(universe)

	c := &ShardedCluster{
		cfg:      cfg,
		universe: universe,
		groups:   groups,
		initial:  initial,
		fabric:   netfab.NewFabric(universe, netfab.Config{Seed: cfg.Seed, LossRate: cfg.LossRate}),
		ring:     shard.NewRing(groups, cfg.RingReplicas),
		procs:    make(map[ProcID]*ShardedProcess, cfg.Processes),
	}
	if cfg.StreamDir != "" {
		c.streams = make(map[types.GroupID]*TraceStream, cfg.Groups)
		for _, g := range groups {
			sr, err := NewTraceStream(conform.GroupDir(cfg.StreamDir, g), TraceStreamOptions{})
			if err != nil {
				return nil, fmt.Errorf("dvs: creating group %s trace stream: %w", g, err)
			}
			c.streams[g] = sr
		}
	}

	for _, id := range universe.Sorted() {
		sp := &ShardedProcess{
			id:     id,
			mux:    netfab.NewGroupMux(id, c.fabric, groups, netfab.GroupMuxConfig{}),
			stacks: make(map[types.GroupID]*stack, cfg.Groups),
			ring:   c.ring,
		}
		ports := make([]mcast.GroupPort, 0, cfg.Groups)
		for _, g := range groups {
			st, err := buildStack(stackConfig{
				self:                id,
				group:               g,
				universe:            universe,
				p0:                  universe,
				initial:             initial,
				transport:           sp.mux.Group(g),
				mode:                cfg.Mode,
				disableRegistration: cfg.DisableRegistration,
				tick:                cfg.TickInterval,
				suspect:             cfg.SuspectTimeout,
				retry:               cfg.ProposeRetry,
				record:              cfg.Record,
				stream:              c.streams[g],
			})
			if err != nil {
				return nil, err
			}
			sp.stacks[g] = st
			ports = append(ports, mcast.GroupPort{G: g, TOB: st.tob, Run: st.vsg.Do})
		}
		sp.mc = mcast.New(id, ports)
		if cfg.Record {
			sp.mrec = conform.NewMcastRecorder(id, groups)
			sp.mc.AddObserver(sp.mrec.Observe)
		}
		for _, g := range groups {
			sp.stacks[g].tob.SetDeliverHook(sp.mc.Hook(g))
		}
		c.procs[id] = sp
	}
	for _, id := range universe.Sorted() {
		sp := c.procs[id]
		sp.mux.Start()
		for _, g := range groups {
			sp.stacks[g].vsg.Start()
		}
		sp.mc.Start()
	}
	return c, nil
}

// Process returns the handle of process i.
func (c *ShardedCluster) Process(i int) *ShardedProcess { return c.procs[ProcID(i)] }

// Processes returns all handles in id order.
func (c *ShardedCluster) Processes() []*ShardedProcess {
	out := make([]*ShardedProcess, 0, len(c.procs))
	for _, id := range c.universe.Sorted() {
		out = append(out, c.procs[id])
	}
	return out
}

// Groups returns the cluster's group ids (sorted).
func (c *ShardedCluster) Groups() []types.GroupID {
	return append([]types.GroupID(nil), c.groups...)
}

// Ring returns the cluster's key→group router.
func (c *ShardedCluster) Ring() *shard.Ring { return c.ring }

// Partition splits the network into the given components; unmentioned
// processes form one extra component together. Faults are node-level:
// every group of an isolated process is isolated.
func (c *ShardedCluster) Partition(groups ...[]int) {
	conv := make([][]ProcID, len(groups))
	for i, g := range groups {
		conv[i] = make([]ProcID, len(g))
		for j, p := range g {
			conv[i][j] = ProcID(p)
		}
	}
	c.fabric.Partition(conv...)
}

// Heal reconnects the whole network.
func (c *ShardedCluster) Heal() { c.fabric.Heal() }

// Crash permanently disconnects process i (crash-stop, all groups).
func (c *ShardedCluster) Crash(i int) { c.fabric.Crash(ProcID(i)) }

// NetStats returns the cumulative fabric counters.
func (c *ShardedCluster) NetStats() netfab.Stats { return c.fabric.Stats() }

// Close stops every process's every stack, seals any sharded trace, and
// disconnects the fabric. Idempotent; returns the first trace-sealing
// error.
func (c *ShardedCluster) Close() error {
	c.close.Do(func() {
		c.fabric.Close()
		for _, sp := range c.procs {
			sp.mc.Stop()
			for _, g := range c.groups {
				sp.stacks[g].vsg.Stop()
			}
			sp.mux.Stop()
		}
		for _, g := range c.groups {
			if sr, ok := c.streams[g]; ok {
				if err := sr.Close(); err != nil && c.closeErr == nil {
					c.closeErr = fmt.Errorf("dvs: sealing group %s trace: %w", g, err)
				}
			}
		}
		if c.cfg.StreamDir != "" && c.cfg.Record {
			if err := conform.WriteMcastLogs(c.cfg.StreamDir, c.mcastLogs()); err != nil && c.closeErr == nil {
				c.closeErr = fmt.Errorf("dvs: writing multicast logs: %w", err)
			}
		}
	})
	return c.closeErr
}

// TraceLogs returns the recorded protocol traces of group g, in process-id
// order, or nil without Record. Must be called after Close; each group's
// logs form their own consistent cut and replay as an independent set.
func (c *ShardedCluster) TraceLogs(g types.GroupID) []TraceLog {
	if !c.cfg.Record {
		return nil
	}
	out := make([]TraceLog, 0, len(c.procs))
	for _, id := range c.universe.Sorted() {
		st, ok := c.procs[id].stacks[g]
		if !ok {
			return nil
		}
		out = append(out, st.rec.Log())
	}
	return out
}

// McastLogs returns the recorded multicast traces, in process-id order, or
// nil without Record. Must be called after Close; check with
// conform.ReplayMcast (cross-group partial order, per-group agreement,
// timestamp order, no duplicates).
func (c *ShardedCluster) McastLogs() []conform.McastLog {
	if !c.cfg.Record {
		return nil
	}
	return c.mcastLogs()
}

func (c *ShardedCluster) mcastLogs() []conform.McastLog {
	out := make([]conform.McastLog, 0, len(c.procs))
	for _, id := range c.universe.Sorted() {
		out = append(out, c.procs[id].mrec.Log())
	}
	return out
}

// ID returns the process id.
func (p *ShardedProcess) ID() ProcID { return p.id }

// Group returns the per-group handle of group g — the same API a
// single-group cluster's Process offers (Broadcast, Deliveries, Views,
// CurrentPrimary, Established, Stats...).
func (p *ShardedProcess) Group(g types.GroupID) (*Process, bool) {
	st, ok := p.stacks[g]
	if !ok {
		return nil, false
	}
	return &Process{id: p.id, stack: st}, true
}

// Submit routes a keyed payload to its group by consistent hash and
// broadcasts it there, reporting false if that group's stack has stopped.
func (p *ShardedProcess) Submit(key, payload string) bool {
	st := p.stacks[p.ring.Group(key)]
	return st.vsg.Do(func() { st.tob.Broadcast(payload) })
}

// SubmitKey returns the group a key routes to.
func (p *ShardedProcess) SubmitKey(key string) types.GroupID { return p.ring.Group(key) }

// SubmitMulti atomically multicasts a payload to the destination groups:
// every addressed group delivers it, and any two groups sharing two
// multicasts deliver them in the same relative order.
func (p *ShardedProcess) SubmitMulti(dests []types.GroupID, payload string) error {
	return p.mc.Submit(dests, payload)
}

// McastDelivered returns a copy of group g's multicast delivery history at
// this process, in delivery order.
func (p *ShardedProcess) McastDelivered(g types.GroupID) []McastDelivery {
	return p.mc.Delivered(g)
}

// McastStats returns the multicast coordinator's counters.
func (p *ShardedProcess) McastStats() mcast.Stats { return p.mc.Stats() }

// MuxDropped returns the process's group-multiplexer drop counter
// (untagged frames, unknown groups, overflowed group inboxes).
func (p *ShardedProcess) MuxDropped() uint64 { return p.mux.Dropped() }
