package dvs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	dvsspec "repro/internal/spec/dvs"
	tospec "repro/internal/spec/to"
	vsspec "repro/internal/spec/vs"
	"repro/internal/toimpl"
	"repro/internal/types"
)

// toAuditEnv is a tiny pure environment for exploring the TO specification:
// it offers bcast inputs until two messages are in the system. The count of
// broadcast messages (pending plus ordered) is monotone, so the bound holds
// on every path and the input set is a function of the state only.
type toAuditEnv struct {
	universe types.ProcSet
}

func (e toAuditEnv) Inputs(a ioa.Automaton) []ioa.Action {
	spec, ok := a.(*tospec.TO)
	if !ok {
		return nil
	}
	total := len(spec.Queue())
	for p := range e.universe {
		total += len(spec.Pending(p))
	}
	if total >= 2 {
		return nil
	}
	var acts []ioa.Action
	for _, p := range e.universe.Sorted() {
		acts = append(acts, ioa.Action{Name: tospec.ActBCast, Kind: ioa.KindInput,
			Param: tospec.BCastParam{A: "a", P: p}})
	}
	return acts
}

// TestFingerprintAudit explores every automaton of the repo in
// dual-fingerprint mode: each visited state is fingerprinted both as the
// 128-bit hash the checkers deduplicate by and as the readable sorted-line
// string, and the exploration fails if hash-equality and string-equality
// ever disagree — either a hash collision (two state texts, one hash) or a
// non-canonical digest (one state text, two hashes, e.g. from map iteration
// order leaking into the fold).
func TestFingerprintAudit(t *testing.T) {
	universe2 := types.RangeProcSet(2)
	v02 := types.InitialView(types.NewProcSet(0, 1))

	cases := []struct {
		name string
		a    ioa.Automaton
		env  ioa.Environment
		cfg  ioa.ExploreConfig
	}{
		{
			name: "VS",
			a:    vsspec.New(universe2, v02),
			env:  vsspec.NewEnv(1, universe2),
			cfg:  ioa.ExploreConfig{MaxStates: 3000, MaxDepth: 8},
		},
		{
			name: "DVS",
			a:    dvsspec.New(universe2, v02),
			env:  dvsspec.NewEnv(1, universe2),
			cfg:  ioa.ExploreConfig{MaxStates: 3000, MaxDepth: 8},
		},
		{
			name: "TO",
			a:    tospec.New(universe2),
			env:  toAuditEnv{universe: universe2},
			cfg:  ioa.ExploreConfig{MaxStates: 3000},
		},
		{
			name: "DVS-IMPL",
			a:    core.NewImpl(universe2, v02),
			env: &core.BoundedEnv{MaxMsgs: 1, MaxViews: 2,
				Views: []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)}},
			cfg: ioa.ExploreConfig{MaxStates: 100000, MaxDepth: 10},
		},
		{
			name: "TO-IMPL",
			a:    toimpl.NewImpl(universe2, v02, toimpl.Config{DVS: toimpl.DVSLiteral}),
			env: &toimpl.BoundedEnv{MaxMsgs: 1, MaxViews: 2,
				Views: []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)}},
			cfg: ioa.ExploreConfig{MaxStates: 100000, MaxDepth: 9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.AuditFingerprints = true
			res, err := ioa.Explore(tc.a, tc.env, cfg)
			if err != nil {
				t.Fatalf("after %d states / %d edges: %v", res.States, res.Edges, err)
			}
			if res.States < 50 {
				t.Errorf("audit covered suspiciously few states: %d", res.States)
			}
			t.Logf("audited %d states, %d edges, depth %d, truncated=%v",
				res.States, res.Edges, res.MaxDepth, res.Truncated)
		})
	}
}
